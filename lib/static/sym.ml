open Compass_rmc
open Compass_machine

(* Symbolic evaluation of Prog terms.

   The free monad keeps thread programs as first-class values
   ({!Machine.spawned_progs}), but their continuations are opaque OCaml
   closures: there is no AST to walk, only a term to *feed*.  So the
   static analyzer evaluates each thread against an abstract store:
   every load forks the path over a small candidate set of values the
   location may hold, every store contributes its value to a shared
   monotone summary, and allocations mint fresh blocks whose identity is
   merged per allocation-site *class* (all "node" blocks alias one
   canonical block — the may-alias abstraction the lints need).

   Loops in the source (CAS retries under [with_fuel], scans) show up as
   repeated visits to the same access site; a per-site visit bound
   ([unroll]) truncates them, and a global per-thread op [budget] bounds
   the whole path tree.  Evaluation runs for a few [rounds] so values
   published by one thread (via the summary) become readable by the
   others — a chaotic iteration to a (bounded) fixpoint.

   Evaluation is *mode-independent*: access modes are recorded on events
   but never influence which values a load may see, so a single
   evaluation serves every hypothetical weakening the lint passes try
   ({!Lints}).  Base [overrides] (a [--weaken] under analysis) are baked
   into the recorded modes so reports show the program actually run.

   Exceptions raised inside continuations (a [failwith "corrupt slot"]
   on an infeasible candidate, [Out_of_fuel], [to_loc_exn] on a poison
   branch) terminate only that path: its event prefix is kept with
   [truncated] set, and the drop is counted. *)

type ekind =
  | ELoad
  | EStore
  | EUpdate of bool  (** RMW; the payload is the success flag *)
  | EAwait
  | EFence of Mode.fence
  | EAlloc

type ev = {
  idx : int;  (** position in the path (sequenced-before order) *)
  site : string option;
  ekind : ekind;
  mode : Mode.access;  (** recorded mode (base overrides applied) *)
  loc : Loc.t option;  (** raw location; [None] for fences *)
  cloc : Loc.t option;  (** class-canonical location (may-alias key) *)
  own : bool;  (** the block was allocated on this path *)
  wrote : Value.t option;  (** raw written value (stores, RMW successes) *)
  read : Value.t option;
  prov : int option;
      (** index of the event whose read produced the pointer this access
          dereferences — the def-use edge the pairing lint follows *)
}

type path = {
  tid : int;
  events : ev array;
  minted : int list;  (** bases of blocks allocated on this path *)
  truncated : bool;
}

type t = {
  threads : int;
  rounds : int;
  paths : path list;  (** final round only — the most-informed paths *)
  total_paths : int;
  dropped : int;  (** paths cut by exceptions inside continuations *)
}

(* The dynamic side keys unlabeled sites by location name and tid
   ({!Compass_analysis.Races.site_key}); minted bases register their
   allocation name so the strings line up. *)
let site_key p e =
  match e.site with
  | Some s -> s
  | None -> (
      match (e.ekind, e.loc) with
      | EFence _, _ -> Format.asprintf "unlabeled-fence[tid %d]" p.tid
      | _, Some l -> Format.asprintf "unlabeled@%a[tid %d]" Loc.pp l p.tid
      | _, None -> Format.asprintf "unlabeled[tid %d]" p.tid)

(* -- evaluator state --------------------------------------------------------- *)

(* Minted bases live far above any base a real machine allocates, so
   [Loc.key]s never collide with the init store seeded from memory. *)
let mint_counter = Atomic.make 0x40000

let fresh_base ~name =
  let base = Atomic.fetch_and_add mint_counter 1 in
  Loc.register_name ~base ~name;
  base

type ctx = {
  classes : (string, int) Hashtbl.t;  (** alloc class -> canonical base *)
  class_of : (int, string) Hashtbl.t;  (** minted base -> class *)
  summary : (int, Value.t list) Hashtbl.t;
      (** canonical [Loc.key] -> values any path wrote there *)
  init : (int, Value.t) Hashtbl.t;  (** setup store, from {!Memory.iter_latest} *)
  overrides : Override.t;
  unroll : int;
  max_cands : int;
  summary_cap : int;
  mutable eid : int;
  mutable dropped : int;
}

(* Per-path state, purely functional: forking a load is list concat. *)
type pst = {
  evs : ev list;  (** newest first *)
  n : int;
  minted : int list;
  store : (int * Value.t) list;  (** path-local latest write per raw key *)
  visits : (string * int) list;  (** per-site loop unrolling counters *)
  prov : (int * int) list;  (** base -> producing event index *)
  trunc : bool;
}

let canon_base ctx b =
  match Hashtbl.find_opt ctx.class_of b with
  | None -> b
  | Some cls -> Hashtbl.find ctx.classes cls

let canon_loc ctx (l : Loc.t) =
  let b = canon_base ctx l.Loc.base in
  if b = l.Loc.base then l else Loc.make ~base:b ~off:l.Loc.off

let canon_value ctx = function
  | Value.Ptr l -> Value.Ptr (canon_loc ctx l)
  | v -> v

let summary_add ctx l v =
  let cv = canon_value ctx v in
  if not (Value.equal cv Value.Poison) then begin
    let key = Loc.key (canon_loc ctx l) in
    let cur = Option.value ~default:[] (Hashtbl.find_opt ctx.summary key) in
    if
      List.length cur < ctx.summary_cap
      && not (List.exists (Value.equal cv) cur)
    then Hashtbl.replace ctx.summary key (cur @ [ cv ])
  end

(* Values a load of [l] may observe: the path's own latest write first,
   then the setup value, then everything the summary accumulated —
   deduplicated, poison-free, capped. *)
let candidates ctx st (l : Loc.t) =
  let key = Loc.key l in
  let ckey = Loc.key (canon_loc ctx l) in
  let local =
    match List.assoc_opt key st.store with Some v -> [ v ] | None -> []
  in
  let ini =
    match Hashtbl.find_opt ctx.init key with
    | Some v -> [ v ]
    | None -> []
  in
  let summ = Option.value ~default:[] (Hashtbl.find_opt ctx.summary ckey) in
  let rec dedup seen = function
    | [] -> []
    | v :: vs ->
        if Value.equal v Value.Poison || List.exists (Value.equal v) seen then
          dedup seen vs
        else v :: dedup (v :: seen) vs
  in
  let rec take n = function
    | x :: xs when n > 0 -> x :: take (n - 1) xs
    | _ -> []
  in
  take ctx.max_cands (dedup [] (local @ ini @ summ))

let push ctx st ~site ~ekind ~mode ~loc ~wrote ~read =
  let own =
    match loc with
    | Some l -> List.mem l.Loc.base st.minted
    | None -> false
  in
  let cloc = Option.map (canon_loc ctx) loc in
  let prov =
    match loc with
    | Some l when not own -> List.assoc_opt l.Loc.base st.prov
    | _ -> None
  in
  let e = { idx = st.n; site; ekind; mode; loc; cloc; own; wrote; read; prov } in
  let st = { st with evs = e :: st.evs; n = st.n + 1 } in
  match read with
  | Some (Value.Ptr l')
    when (not (List.mem l'.Loc.base st.minted))
         && not (List.mem_assoc l'.Loc.base st.prov) ->
      { st with prov = (l'.Loc.base, e.idx) :: st.prov }
  | _ -> st

let write ctx st (l : Loc.t) v =
  summary_add ctx l v;
  { st with store = (Loc.key l, v) :: st.store }

let visit_key site (l : Loc.t) =
  match site with Some s -> s | None -> "@" ^ string_of_int (Loc.key l)

let visit ctx st key =
  let c = Option.value ~default:0 (List.assoc_opt key st.visits) in
  if c >= ctx.unroll then None
  else Some { st with visits = (key, c + 1) :: st.visits }

let alloc_block ctx st name size init =
  let cls = Printf.sprintf "%s/%d" name size in
  if not (Hashtbl.mem ctx.classes cls) then begin
    let cb = fresh_base ~name in
    Hashtbl.replace ctx.classes cls cb;
    Hashtbl.replace ctx.class_of cb cls
  end;
  let base = fresh_base ~name in
  Hashtbl.replace ctx.class_of base cls;
  let st = { st with minted = base :: st.minted } in
  let st =
    if Value.equal init Value.Poison then st
    else
      let rec cells st off =
        if off >= size then st
        else cells (write ctx st (Loc.make ~base ~off) init) (off + 1)
      in
      cells st 0
  in
  (st, base)

let mkres ?(success = true) v =
  { Prog.value = v; view = View.bot; lview = Lview.empty; success }

(* -- the evaluator ----------------------------------------------------------- *)

let rec eval ctx budget tid st (p : 'a Prog.t) : pst list =
  match p with
  | Prog.Ret _ -> [ st ]
  | Prog.Reserve k ->
      ctx.eid <- ctx.eid + 1;
      let e = ctx.eid in
      continue ctx budget tid st (fun () -> k e)
  | Prog.Op ({ site; instr }, k) ->
      if !budget <= 0 then [ { st with trunc = true } ]
      else begin
        decr budget;
        match instr with
        | Prog.Yield -> continue ctx budget tid st (fun () -> k (mkres Value.Unit))
        | Prog.Tid ->
            continue ctx budget tid st (fun () -> k (mkres (Value.Int tid)))
        | Prog.Fence f0 -> (
            match Override.fence ctx.overrides ~site f0 with
            | None -> continue ctx budget tid st (fun () -> k (mkres Value.Unit))
            | Some f ->
                let st =
                  push ctx st ~site ~ekind:(EFence f) ~mode:Mode.Rlx ~loc:None
                    ~wrote:None ~read:None
                in
                continue ctx budget tid st (fun () -> k (mkres Value.Unit)))
        | Prog.Alloc { name; size; init } ->
            let st, base = alloc_block ctx st name size init in
            (* The machine records one unlabeled initialising store per
               cell ({!Machine}); the race-candidate cross-check needs
               the same events here. *)
            let st = ref st in
            for off = 0 to size - 1 do
              st :=
                push ctx !st ~site ~ekind:EAlloc ~mode:Mode.Na
                  ~loc:(Some (Loc.make ~base ~off))
                  ~wrote:(Some init) ~read:None
            done;
            let st = !st in
            continue ctx budget tid st (fun () ->
                k (mkres (Value.Ptr (Loc.make ~base ~off:0))))
        | Prog.Store (l, v, m0, _) ->
            let m = Override.access ctx.overrides ~site m0 in
            let st =
              push ctx st ~site ~ekind:EStore ~mode:m ~loc:(Some l)
                ~wrote:(Some v) ~read:None
            in
            let st = write ctx st l v in
            continue ctx budget tid st (fun () -> k (mkres Value.Unit))
        | Prog.Load (l, m0, _) -> (
            let m = Override.access ctx.overrides ~site m0 in
            match visit ctx st (visit_key site l) with
            | None -> [ { st with trunc = true } ]
            | Some st -> (
                match candidates ctx st l with
                | [] -> [ { st with trunc = true } ]
                | cs ->
                    List.concat_map
                      (fun v ->
                        let st =
                          push ctx st ~site ~ekind:ELoad ~mode:m ~loc:(Some l)
                            ~wrote:None ~read:(Some v)
                        in
                        continue ctx budget tid st (fun () -> k (mkres v)))
                      cs))
        | Prog.Await (l, m0, pred, _) -> (
            let m = Override.access ctx.overrides ~site m0 in
            match visit ctx st (visit_key site l) with
            | None -> [ { st with trunc = true } ]
            | Some st -> (
                let cs =
                  List.filter
                    (fun v -> try pred v with _ -> false)
                    (candidates ctx st l)
                in
                let cs = match cs with a :: b :: _ -> [ a; b ] | _ -> cs in
                match cs with
                | [] -> [ { st with trunc = true } ]
                | cs ->
                    List.concat_map
                      (fun v ->
                        let st =
                          push ctx st ~site ~ekind:EAwait ~mode:m ~loc:(Some l)
                            ~wrote:None ~read:(Some v)
                        in
                        continue ctx budget tid st (fun () -> k (mkres v)))
                      cs))
        | Prog.Rmw (l, kind, m0, _) -> (
            let m = Override.access ctx.overrides ~site m0 in
            match visit ctx st (visit_key site l) with
            | None -> [ { st with trunc = true } ]
            | Some st -> (
                let branches =
                  match kind with
                  | Prog.Cas (expected, desired) ->
                      (* The success branch is always feasible (another
                         thread may have installed [expected]); failures
                         fork over observed non-matching values. *)
                      let fails =
                        candidates ctx st l
                        |> List.filter (fun v -> not (Value.equal v expected))
                      in
                      let fails =
                        match fails with a :: b :: _ -> [ a; b ] | _ -> fails
                      in
                      (expected, Some desired, true)
                      :: List.map (fun v -> (v, None, false)) fails
                  | Prog.Faa d ->
                      candidates ctx st l
                      |> List.filter_map (function
                           | Value.Int n ->
                               Some
                                 (Value.Int n, Some (Value.Int (n + d)), true)
                           | _ -> None)
                  | Prog.Xchg v ->
                      candidates ctx st l
                      |> List.map (fun old -> (old, Some v, true))
                in
                let branches =
                  match branches with
                  | a :: b :: c :: _ -> [ a; b; c ]
                  | bs -> bs
                in
                match branches with
                | [] -> [ { st with trunc = true } ]
                | bs ->
                    List.concat_map
                      (fun (rv, wv, success) ->
                        let st =
                          push ctx st ~site ~ekind:(EUpdate success) ~mode:m
                            ~loc:(Some l) ~wrote:wv ~read:(Some rv)
                        in
                        let st =
                          match wv with Some w -> write ctx st l w | None -> st
                        in
                        continue ctx budget tid st (fun () ->
                            k (mkres ~success rv)))
                      bs))
      end

(* Force a continuation, converting any exception it (or the branch it
   opens) raises into a truncated path.  [match ... with exception]
   only catches the thunk itself; deeper branches are protected by the
   [continue] frames inside their own [eval] calls. *)
and continue ctx budget tid st thunk =
  match thunk () with
  | next -> eval ctx budget tid st next
  | exception Prog.Out_of_fuel _ -> [ { st with trunc = true } ]
  | exception _ ->
      ctx.dropped <- ctx.dropped + 1;
      [ { st with trunc = true } ]

let default_rounds = 3
let default_unroll = 4
let default_budget = 4000
let default_max_cands = 6

let finish tid (st : pst) =
  {
    tid;
    events = Array.of_list (List.rev st.evs);
    minted = st.minted;
    truncated = st.trunc;
  }

(* Forking over candidate values produces many paths that are identical
   up to which concrete block a pointer names — indistinguishable to the
   lints, which only see sites, modes, canonical locations, ownership
   and def-use edges.  Deduplicating by that signature is what keeps the
   (quadratic) lint passes tractable. *)
let signature ctx (p : path) =
  (* scalar values never influence a lint verdict; pointer identity
     (canonical) does, via publication and def-use *)
  let v =
    Option.map (fun x ->
        match canon_value ctx x with
        | Value.Ptr l -> Loc.key l
        | _ -> -1)
  in
  ( p.tid,
    p.truncated,
    Array.map
      (fun e ->
        ( e.site,
          e.ekind,
          e.mode,
          Option.map Loc.key e.cloc,
          e.own,
          e.prov,
          v e.wrote,
          v e.read ))
      p.events )

let dedup ctx paths =
  let seen = Hashtbl.create 256 in
  List.filter
    (fun p ->
      let s = signature ctx p in
      if Hashtbl.mem seen s then false
      else (
        Hashtbl.replace seen s ();
        true))
    paths

let run ?(rounds = default_rounds) ?(unroll = default_unroll)
    ?(budget = default_budget) ?(max_cands = default_max_cands)
    ?(overrides = Override.empty) (m : Machine.t) : t =
  let ctx =
    {
      classes = Hashtbl.create 8;
      class_of = Hashtbl.create 32;
      summary = Hashtbl.create 64;
      init = Hashtbl.create 64;
      overrides;
      unroll;
      max_cands;
      summary_cap = 8;
      eid = 0;
      dropped = 0;
    }
  in
  Memory.iter_latest (Machine.memory m) (fun l v ->
      match v with
      | Value.Poison -> ()
      | v -> Hashtbl.replace ctx.init (Loc.key l) v);
  let progs = Machine.spawned_progs m in
  let empty =
    { evs = []; n = 0; minted = []; store = []; visits = []; prov = []; trunc = false }
  in
  let total = ref 0 in
  let final = ref [] in
  for _round = 1 to max 1 rounds do
    final :=
      List.concat
        (List.mapi
           (fun tid p ->
             let b = ref budget in
             let ps = eval ctx b tid empty p in
             total := !total + List.length ps;
             dedup ctx (List.map (finish tid) ps))
           progs)
  done;
  {
    threads = List.length progs;
    rounds = max 1 rounds;
    paths = !final;
    total_paths = !total;
    dropped = ctx.dropped;
  }
