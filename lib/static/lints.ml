open Compass_rmc
open Compass_machine

(* The lint passes over symbolic paths.

   Every pass takes a *hypothetical* override [hyp] — the lints are
   evaluated both at declared modes ([hyp = empty]) and under per-site
   weakenings, which is how {!Static} predicts which sites the dynamic
   audit will find Necessary.  Evaluation itself is mode-independent
   ({!Sym}), so re-linting under a hypothesis costs an array scan, not a
   re-evaluation.

   Severities: [Defect] passes (publication, acquire-pairing,
   relaxed-CAS-success) must be empty for every correct structure at
   declared modes — the no-false-positive sweep in the tests holds the
   line.  [Candidate] findings (na-race pairs) are deliberately
   over-approximate: the differential soundness harness only requires
   them to *contain* every dynamically detected race pair. *)

type severity = Defect | Candidate

let severity_to_string = function Defect -> "defect" | Candidate -> "candidate"

type finding = {
  lint : string;
  severity : severity;
  site : string;
  partner : string option;
  scenario : string;
  detail : string;
}

(* -- mode queries under a hypothesis ----------------------------------------- *)

let amode hyp (e : Sym.ev) = Override.access hyp ~site:e.Sym.site e.Sym.mode

let acquires hyp (e : Sym.ev) =
  match e.Sym.ekind with
  | Sym.EFence f -> (
      match Override.fence hyp ~site:e.Sym.site f with
      | Some (Mode.F_acq | Mode.F_acqrel | Mode.F_sc) -> true
      | _ -> false)
  | Sym.ELoad | Sym.EAwait | Sym.EUpdate _ -> Mode.acquires (amode hyp e)
  | Sym.EStore | Sym.EAlloc -> false

let releases hyp (e : Sym.ev) =
  match e.Sym.ekind with
  | Sym.EFence f -> (
      match Override.fence hyp ~site:e.Sym.site f with
      | Some (Mode.F_rel | Mode.F_acqrel | Mode.F_sc) -> true
      | _ -> false)
  | Sym.EStore | Sym.EUpdate true -> Mode.releases (amode hyp e)
  | _ -> false

let is_write (e : Sym.ev) =
  match e.Sym.ekind with
  | Sym.EStore | Sym.EUpdate true -> true
  | Sym.EAlloc -> e.Sym.wrote <> None
  | _ -> false

let is_read (e : Sym.ev) =
  match e.Sym.ekind with
  | Sym.ELoad | Sym.EAwait | Sym.EUpdate _ -> true
  | _ -> false

(* An access to a block whose pointer was produced by event [j] is
   guarded if the producing read acquires, or some other acquire is
   sequenced anywhere before the dereference (a prior acquire load of
   the signal, an acquire fence after a relaxed load, a lock
   acquisition). *)
let guarded hyp (evs : Sym.ev array) j d =
  acquires hyp evs.(j)
  ||
  let rec go i =
    i < d && (((i <> j && acquires hyp evs.(i)) || go (i + 1)))
  in
  go 0

let cloc_key (e : Sym.ev) = Option.map Loc.key e.Sym.cloc

(* -- publication safety ------------------------------------------------------ *)

(* A path initialises a block it allocated with plain writes and then
   publishes its pointer to a shared location.  Safe shapes:
   (1) a release (store, RMW or fence) sequenced after the last
       initialising write and at-or-before the publication — the classic
       release-publication idiom (msqueue's link CAS, the fence version's
       F_rel, hwqueue's release slot store, a lock acquired before the
       publication under a coarse lock);
   (2) the release comes *after* the publication but is followed (or
       realised) by a signal write, and every cross-thread reader of the
       published-to location acquire-reads one of the signal locations
       first — the Chase-Lev push idiom (slot :=rlx; F_rel;
       bottom :=rlx, thieves acquire-read bottom before the slot).
   Anything else is a publication defect, attributed to the publishing
   site (with the unguarded reader as partner when one is known). *)
let publication hyp ~scenario (paths : Sym.path list) =
  List.concat_map
    (fun (p : Sym.path) ->
      let evs = p.Sym.events in
      let n = Array.length evs in
      List.concat_map
        (fun b ->
          let inits = ref [] and pubs = ref [] in
          Array.iteri
            (fun i (e : Sym.ev) ->
              (match e.Sym.loc with
              | Some l
                when l.Loc.base = b && is_write e && not (releases hyp e) ->
                  inits := i :: !inits
              | _ -> ());
              match (e.Sym.ekind, e.Sym.wrote, e.Sym.loc) with
              | (Sym.EStore | Sym.EUpdate true), Some (Value.Ptr pl), Some l
                when pl.Loc.base = b
                     && l.Loc.base <> b
                     && not (List.mem l.Loc.base p.Sym.minted) ->
                  pubs := i :: !pubs
              | _ -> ())
            evs;
          match (!inits, !pubs) with
          | [], _ | _, [] -> []
          | inits, pubs ->
              (* Writes to the block sequenced *after* a publication are
                 not initialisation — linking a later node into an
                 already-published one, retracting an offer — so the
                 init window is computed per publication. *)
              let last_init_before pi =
                List.fold_left
                  (fun acc i -> if i < pi then max acc i else acc)
                  (-1) inits
              in
              List.filter_map
                (fun pi ->
                  let last_init = last_init_before pi in
                  let release_by_pub =
                    let rec go i =
                      i <= pi
                      && ((i > last_init && releases hyp evs.(i)) || go (i + 1))
                    in
                    go 0
                  in
                  if release_by_pub then None
                  else
                    let rels = ref [] in
                    for i = pi + 1 to n - 1 do
                      if i > last_init && releases hyp evs.(i) then
                        rels := i :: !rels
                    done;
                    let flag partner why =
                      Some
                        {
                          lint = "publication";
                          severity = Defect;
                          site = Sym.site_key p evs.(pi);
                          partner;
                          scenario;
                          detail =
                            Format.asprintf
                              "block %a initialised plainly and published \
                               with no release %s"
                              Loc.pp
                              (Loc.make ~base:b ~off:0)
                              why;
                        }
                    in
                    (match List.rev !rels with
                    | [] -> flag None "on the path"
                    | r :: _ ->
                        (* signal locations: shared writes at or after
                           the first post-publication release *)
                        let signals = ref [] in
                        for i = r to n - 1 do
                          let e = evs.(i) in
                          if is_write e && not e.Sym.own then
                            match cloc_key e with
                            | Some k when not (List.mem k !signals) ->
                                signals := k :: !signals
                            | _ -> ()
                        done;
                        let ploc =
                          match cloc_key evs.(pi) with
                          | Some k -> k
                          | None -> -1
                        in
                        let offending =
                          List.find_map
                            (fun (q : Sym.path) ->
                              if q.Sym.tid = p.Sym.tid then None
                              else
                                let qn = Array.length q.Sym.events in
                                let rec go i =
                                  if i >= qn then None
                                  else
                                    let e = q.Sym.events.(i) in
                                    if
                                      is_read e && cloc_key e = Some ploc
                                    then
                                      let rec pre j =
                                        j < i
                                        && ((is_read q.Sym.events.(j)
                                            && acquires hyp q.Sym.events.(j)
                                            && (match
                                                  cloc_key q.Sym.events.(j)
                                                with
                                               | Some k ->
                                                   List.mem k !signals
                                               | None -> false))
                                           || pre (j + 1))
                                      in
                                      if pre 0 then go (i + 1)
                                      else Some (Sym.site_key q e)
                                    else go (i + 1)
                                in
                                go 0)
                            paths
                        in
                        (match offending with
                        | None -> None
                        | Some reader ->
                            flag (Some reader)
                              "visible to a reader that never acquires the \
                               signal")))
                pubs)
        (List.sort_uniq compare p.Sym.minted))
    paths

(* -- acquire-on-read pairing ------------------------------------------------- *)

let pairing hyp ~scenario (paths : Sym.path list) =
  List.concat_map
    (fun (p : Sym.path) ->
      let evs = p.Sym.events in
      Array.to_list evs
      |> List.filter_map (fun (e : Sym.ev) ->
             match e.Sym.prov with
             | Some j when not (guarded hyp evs j e.Sym.idx) ->
                 Some
                   {
                     lint = "acquire-pairing";
                     severity = Defect;
                     site = Sym.site_key p evs.(j);
                     partner = Some (Sym.site_key p e);
                     scenario;
                     detail =
                       Printf.sprintf
                         "pointer read at %s is dereferenced at %s with no \
                          acquire on the path"
                         (Sym.site_key p evs.(j))
                         (Sym.site_key p e);
                   }
             | _ -> None))
    paths

(* -- relaxed-CAS-success misuse ---------------------------------------------- *)

(* A successful RMW whose mode does not acquire, followed by a
   non-atomic access to somebody else's block before any acquire: the
   success is being treated as a synchronisation point it is not
   (weakened lock acquisitions are the canonical instance). *)
let cas_misuse hyp ~scenario (paths : Sym.path list) =
  List.concat_map
    (fun (p : Sym.path) ->
      let evs = p.Sym.events in
      let n = Array.length evs in
      let out = ref [] in
      Array.iteri
        (fun i (e : Sym.ev) ->
          match e.Sym.ekind with
          | Sym.EUpdate true when not (Mode.acquires (amode hyp e)) ->
              let rec scan k =
                if k >= n then ()
                else if acquires hyp evs.(k) then ()
                else
                  let f = evs.(k) in
                  if
                    f.Sym.mode = Mode.Na && (not f.Sym.own)
                    && f.Sym.loc <> None
                    && f.Sym.ekind <> Sym.EAlloc
                  then
                    out :=
                      {
                        lint = "relaxed-cas-success";
                        severity = Defect;
                        site = Sym.site_key p e;
                        partner = Some (Sym.site_key p f);
                        scenario;
                        detail =
                          Printf.sprintf
                            "successful RMW at %s does not acquire, yet %s \
                             accesses shared data non-atomically before any \
                             acquire"
                            (Sym.site_key p e) (Sym.site_key p f);
                      }
                      :: !out
                  else scan (k + 1)
              in
              scan (i + 1)
          | _ -> ())
        evs;
      !out)
    paths

(* -- non-atomic race candidates ---------------------------------------------- *)

(* Why a cross-thread na-touching pair might still be ordered:
   provenance guarded (reached through an acquired pointer), inside a
   lock window (successful acquiring RMW before, release after), or an
   own-block initialisation later released.  Pairs where both sides are
   own-block accesses are distinct instances and never alias. *)
let protected hyp (p : Sym.path) (e : Sym.ev) =
  let evs = p.Sym.events in
  let n = Array.length evs in
  (match e.Sym.prov with
  | Some j -> guarded hyp evs j e.Sym.idx
  | None -> false)
  || (let before = ref false and after = ref false in
      for i = 0 to e.Sym.idx - 1 do
        match evs.(i).Sym.ekind with
        | Sym.EUpdate true when Mode.acquires (amode hyp evs.(i)) ->
            before := true
        | _ -> ()
      done;
      for i = e.Sym.idx + 1 to n - 1 do
        if releases hyp evs.(i) then after := true
      done;
      !before && !after)
  ||
  (e.Sym.own
  &&
  let after = ref false in
  for i = e.Sym.idx + 1 to n - 1 do
    if releases hyp evs.(i) then after := true
  done;
  !after)

(* Pairwise comparison of every event against every event of every
   other path is quadratic in the (large) number of symbolic events, so
   the pass aggregates first: one cell per (site, canonical location)
   accumulating threads, polarity, atomicity and protection across all
   occurrences, then pairs cells per location.  The aggregation only
   widens the candidate set (each flag is "some occurrence had it"),
   which is the sound direction for this pass. *)
type na_cell = {
  cell_site : string;
  cell_loc : int;
  mutable c_tids : int list;
  mutable c_write : bool;
  mutable c_na : bool;
  mutable c_all_own : bool;
  mutable c_all_prot : bool;
}

let na_races hyp ~scenario (paths : Sym.path list) =
  let cells : (string * int, na_cell) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (p : Sym.path) ->
      Array.iter
        (fun (e : Sym.ev) ->
          match cloc_key e with
          | None -> ()
          | Some k ->
              begin
                let site = Sym.site_key p e in
                let c =
                  match Hashtbl.find_opt cells (site, k) with
                  | Some c -> c
                  | None ->
                      let c =
                        {
                          cell_site = site;
                          cell_loc = k;
                          c_tids = [];
                          c_write = false;
                          c_na = false;
                          c_all_own = true;
                          c_all_prot = true;
                        }
                      in
                      Hashtbl.replace cells (site, k) c;
                      c
                in
                if not (List.mem p.Sym.tid c.c_tids) then
                  c.c_tids <- p.Sym.tid :: c.c_tids;
                if is_write e then c.c_write <- true;
                if e.Sym.mode = Mode.Na then c.c_na <- true;
                if not e.Sym.own then c.c_all_own <- false;
                if c.c_all_prot && not (protected hyp p e) then
                  c.c_all_prot <- false
              end)
        p.Sym.events)
    paths;
  let by_loc : (int, na_cell list ref) Hashtbl.t = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ c ->
      let l =
        match Hashtbl.find_opt by_loc c.cell_loc with
        | Some l -> l
        | None ->
            let l = ref [] in
            Hashtbl.replace by_loc c.cell_loc l;
            l
      in
      l := c :: !l)
    cells;
  let out = ref [] in
  Hashtbl.iter
    (fun _ l ->
      let cs = List.sort (fun a b -> compare a.cell_site b.cell_site) !l in
      let rec pairs = function
        | [] -> ()
        | c1 :: rest ->
            List.iter
              (fun c2 ->
                let cross =
                  List.exists
                    (fun t1 -> List.exists (fun t2 -> t1 <> t2) c2.c_tids)
                    c1.c_tids
                in
                if
                  cross
                  && (c1.c_write || c2.c_write)
                  && (c1.c_na || c2.c_na)
                  && not (c1.c_all_own && c2.c_all_own)
                  && not (c1.c_all_prot && c2.c_all_prot)
                then begin
                  let a = c1.cell_site and b = c2.cell_site in
                  let a, b = if a <= b then (a, b) else (b, a) in
                  out :=
                    {
                      lint = "na-race";
                      severity = Candidate;
                      site = a;
                      partner = Some b;
                      scenario;
                      detail =
                        Printf.sprintf
                          "%s and %s may touch the same location with a \
                           non-atomic side and no static ordering"
                          a b;
                    }
                    :: !out
                end)
              (c1 :: rest);
            pairs rest
      in
      pairs cs)
    by_loc;
  !out

(* -- driver ------------------------------------------------------------------ *)

let fkey f = (f.lint, f.site, f.partner)

let dedup fs =
  let seen = Hashtbl.create 32 in
  List.filter
    (fun f ->
      let k = fkey f in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    fs

let run ?(hyp = Override.empty) ?(with_candidates = true) ~scenario paths =
  let defects =
    publication hyp ~scenario paths
    @ pairing hyp ~scenario paths
    @ cas_misuse hyp ~scenario paths
  in
  let cands = if with_candidates then na_races hyp ~scenario paths else [] in
  dedup (defects @ cands)
