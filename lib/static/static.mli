open Compass_machine
open Compass_util

(** The static linter's front door: evaluate a scenario battery
    symbolically ({!Sym}), build the access-site graph ({!Sitegraph}),
    run the lint passes ({!Lints}) at declared modes, and classify each
    weakenable site by re-linting under its weakest hypothetical
    weakening.  [compass analyze static] and the audit prioritizer
    ([analyze modes --prioritize=static]) are thin wrappers over
    {!analyze}. *)

type opts = { rounds : int; unroll : int; budget : int; max_cands : int }

val default_opts : opts

type stats = {
  scenarios : int;
  threads : int;
  paths : int;
  dropped : int;  (** paths cut by exceptions inside continuations *)
}

type report = {
  subject : string;
  scenario_names : string list;
  override_specs : string list;  (** base [--weaken] specs in effect *)
  graph : Sitegraph.t;
  findings : Lints.finding list;  (** at the base modes, deduplicated *)
  race_candidates : (string * string) list;
      (** sorted site pairs (na-race candidates plus partnered defects)
          — the superset the dynamic differential checks against *)
  predicted_necessary : string list;
      (** weakenable sites whose weakest hypothetical weakening
          introduces a new defect, strongest-signal lints first — the
          audit priority order *)
  over_strong : string list;
      (** weakenable sites whose weakest weakening stays defect-free *)
  stats : stats;
}

val analyze :
  ?opts:opts ->
  ?overrides:Override.t ->
  subject:string ->
  (unit -> Explore.scenario) list ->
  report
(** Scenarios are built on fresh machines but never run; [overrides]
    are baked into the base modes (so a weakened structure lints as
    weakened). *)

val defects : report -> Lints.finding list
val clean : report -> bool
(** no [Defect]-severity findings at the base modes *)

val site_modes : ?opts:opts -> (unit -> Explore.scenario) list -> (string * string) list
(** labeled site -> declared mode string, discovered statically — feeds
    [compass specs --json] and [replay --weaken] site validation *)

val pp_report : Format.formatter -> report -> unit
val report_to_json : report -> Jsonout.t
