open Compass_rmc
open Compass_machine
open Compass_util

(* Orchestration: build each scenario's machine (setup only — never
   run), evaluate its threads symbolically, merge the per-scenario
   paths into one site graph, lint at declared modes, then re-lint each
   weakenable site under its weakest hypothetical override to split the
   sites into predicted-necessary (the weakening introduces a new
   defect) and over-strong candidates (it does not).  The prediction is
   what [analyze modes --prioritize=static] feeds the dynamic audit. *)

type opts = { rounds : int; unroll : int; budget : int; max_cands : int }

let default_opts =
  {
    rounds = Sym.default_rounds;
    unroll = Sym.default_unroll;
    budget = Sym.default_budget;
    max_cands = Sym.default_max_cands;
  }

type stats = {
  scenarios : int;
  threads : int;
  paths : int;
  dropped : int;
}

type report = {
  subject : string;
  scenario_names : string list;
  override_specs : string list;  (** base [--weaken] specs in effect *)
  graph : Sitegraph.t;
  findings : Lints.finding list;  (** at the base modes *)
  race_candidates : (string * string) list;
      (** sorted site pairs: na-race candidates plus defect pairs — the
          superset the dynamic differential checks against *)
  predicted_necessary : string list;
      (** weakenable sites whose weakest hypothetical weakening
          introduces a new defect, strongest-signal lints first *)
  over_strong : string list;
      (** weakenable sites whose weakest weakening stays defect-free *)
  stats : stats;
}

let defects r =
  List.filter (fun (f : Lints.finding) -> f.Lints.severity = Lints.Defect)
    r.findings

let clean r = defects r = []

(* The weakest strict weakening of a site, mirroring the audit's mutant
   ladder ({!Compass_analysis.Audit.weakenings}): the verdict mutant is
   the weakest one, so that is the hypothesis worth linting. *)
let weakest_hyp site = function
  | Sitegraph.KAccess (Mode.AcqRel | Mode.Acq | Mode.Rel) ->
      Some (Override.weaken_access site Mode.Rlx Override.empty)
  | Sitegraph.KAccess (Mode.Rlx | Mode.Na) -> None
  | Sitegraph.KFence _ -> Some (Override.drop_fence site Override.empty)

let lint_rank (f : Lints.finding) =
  match f.Lints.lint with
  | "publication" -> 0
  | "relaxed-cas-success" -> 1
  | _ -> 2

let analyze ?(opts = default_opts) ?(overrides = Override.empty) ~subject
    scenarios =
  let runs =
    List.map
      (fun mk ->
        let sc = mk () in
        let m = Machine.create () in
        let (_ : Machine.outcome -> Explore.verdict) = sc.Explore.build m in
        ( sc.Explore.name,
          Sym.run ~rounds:opts.rounds ~unroll:opts.unroll ~budget:opts.budget
            ~max_cands:opts.max_cands ~overrides m ))
      scenarios
  in
  let all_paths = List.concat_map (fun (_, r) -> r.Sym.paths) runs in
  let graph = Sitegraph.build all_paths in
  let findings =
    List.concat_map
      (fun (name, r) -> Lints.run ~scenario:name r.Sym.paths)
      runs
  in
  let seen = Hashtbl.create 32 in
  let findings =
    List.filter
      (fun f ->
        let k = Lints.fkey f in
        if Hashtbl.mem seen k then false
        else (
          Hashtbl.replace seen k ();
          true))
      findings
  in
  let base_defect_keys =
    List.filter_map
      (fun (f : Lints.finding) ->
        if f.Lints.severity = Lints.Defect then Some (Lints.fkey f) else None)
      findings
  in
  (* Classify each weakenable site by re-linting under its weakest
     hypothetical weakening — evaluation is shared, only the scans
     re-run. *)
  let ranked_predicted = ref [] and over_strong = ref [] in
  List.iter
    (fun (s : Sitegraph.site) ->
      if s.Sitegraph.labeled then
        match weakest_hyp s.Sitegraph.key s.Sitegraph.kind with
        | None -> ()
        | Some hyp ->
            let fresh =
              List.concat_map
                (fun (name, r) ->
                  Lints.run ~hyp ~with_candidates:false ~scenario:name
                    r.Sym.paths)
                runs
              |> List.filter (fun f ->
                     not (List.mem (Lints.fkey f) base_defect_keys))
            in
            if fresh = [] then over_strong := s.Sitegraph.key :: !over_strong
            else
              let rank =
                List.fold_left (fun acc f -> min acc (lint_rank f)) 9 fresh
              in
              ranked_predicted :=
                (rank, List.length !ranked_predicted, s.Sitegraph.key)
                :: !ranked_predicted)
    graph.Sitegraph.sites;
  let predicted_necessary =
    List.sort compare !ranked_predicted |> List.map (fun (_, _, k) -> k)
  in
  let race_candidates =
    List.filter_map
      (fun (f : Lints.finding) ->
        match f.Lints.partner with
        | Some b ->
            let a = f.Lints.site in
            Some (if a <= b then (a, b) else (b, a))
        | None -> None)
      findings
    |> List.sort_uniq compare
  in
  let stats =
    {
      scenarios = List.length runs;
      threads = List.fold_left (fun n (_, r) -> n + r.Sym.threads) 0 runs;
      paths = List.fold_left (fun n (_, r) -> n + List.length r.Sym.paths) 0 runs;
      dropped = List.fold_left (fun n (_, r) -> n + r.Sym.dropped) 0 runs;
    }
  in
  {
    subject;
    scenario_names = List.map fst runs;
    override_specs = Override.spec_strings overrides;
    graph;
    findings;
    race_candidates;
    predicted_necessary;
    over_strong = List.rev !over_strong;
    stats;
  }

(* Site discovery only — no lint passes, no hypothesis classification. *)
let site_modes ?(opts = default_opts) scenarios =
  let paths =
    List.concat_map
      (fun mk ->
        let sc = mk () in
        let m = Machine.create () in
        let (_ : Machine.outcome -> Explore.verdict) = sc.Explore.build m in
        (Sym.run ~rounds:opts.rounds ~unroll:opts.unroll ~budget:opts.budget
           ~max_cands:opts.max_cands m)
          .Sym.paths)
      scenarios
  in
  Sitegraph.labeled_modes (Sitegraph.build paths)

(* -- rendering --------------------------------------------------------------- *)

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>static synchronization lints: %s@ scenarios: %s%s@ sites: %d \
     (%d labeled), may-alias edges: %d@ paths: %d across %d threads \
     (%d dropped)@ "
    r.subject
    (String.concat ", " r.scenario_names)
    (match r.override_specs with
    | [] -> ""
    | specs -> Printf.sprintf " (weakened: %s)" (String.concat "," specs))
    (List.length r.graph.Sitegraph.sites)
    (List.length (Sitegraph.labeled_modes r.graph))
    (List.length r.graph.Sitegraph.edges)
    r.stats.paths r.stats.threads r.stats.dropped;
  (match defects r with
  | [] -> Format.fprintf ppf "@ no defects at these modes@ "
  | ds ->
      Format.fprintf ppf "@ %d defect(s):@ " (List.length ds);
      List.iter
        (fun (f : Lints.finding) ->
          Format.fprintf ppf "  [%s] %s%s (%s): %s@ " f.Lints.lint
            f.Lints.site
            (match f.Lints.partner with
            | Some p -> " ~ " ^ p
            | None -> "")
            f.Lints.scenario f.Lints.detail)
        ds);
  let cands =
    List.filter
      (fun (f : Lints.finding) -> f.Lints.severity = Lints.Candidate)
      r.findings
  in
  if cands <> [] then
    Format.fprintf ppf "@ %d race candidate pair(s) (over-approximate)@ "
      (List.length r.race_candidates);
  if r.predicted_necessary <> [] then
    Format.fprintf ppf "@ predicted necessary: %s@ "
      (String.concat ", " r.predicted_necessary);
  if r.over_strong <> [] then
    Format.fprintf ppf "@ over-strong candidates: %s@ "
      (String.concat ", " r.over_strong);
  Format.fprintf ppf "@]"

let report_to_json r =
  let finding_json (f : Lints.finding) =
    Jsonout.Obj
      [
        ("lint", Jsonout.Str f.Lints.lint);
        ("severity", Jsonout.Str (Lints.severity_to_string f.Lints.severity));
        ("site", Jsonout.Str f.Lints.site);
        ("partner", Jsonout.opt (fun p -> Jsonout.Str p) f.Lints.partner);
        ("scenario", Jsonout.Str f.Lints.scenario);
        ("detail", Jsonout.Str f.Lints.detail);
      ]
  in
  Jsonout.Obj
    [
      ("subject", Jsonout.Str r.subject);
      ("scenarios", Jsonout.str_list r.scenario_names);
      ("weakened", Jsonout.str_list r.override_specs);
      ("clean", Jsonout.Bool (clean r));
      ( "sites",
        Jsonout.List
          (List.map
             (fun (s : Sitegraph.site) ->
               Jsonout.Obj
                 [
                   ("site", Jsonout.Str s.Sitegraph.key);
                   ( "mode",
                     Jsonout.Str (Sitegraph.kind_to_string s.Sitegraph.kind) );
                   ("labeled", Jsonout.Bool s.Sitegraph.labeled);
                   ("locations", Jsonout.str_list s.Sitegraph.locs);
                   ("reads", Jsonout.Bool s.Sitegraph.reads);
                   ("writes", Jsonout.Bool s.Sitegraph.writes);
                 ])
             r.graph.Sitegraph.sites) );
      ( "may_alias_edges",
        Jsonout.List
          (List.map
             (fun (e : Sitegraph.edge) ->
               Jsonout.Obj
                 [
                   ("a", Jsonout.Str e.Sitegraph.a);
                   ("b", Jsonout.Str e.Sitegraph.b);
                   ("loc", Jsonout.Str e.Sitegraph.loc);
                   ("cross_thread", Jsonout.Bool e.Sitegraph.cross_thread);
                 ])
             r.graph.Sitegraph.edges) );
      ("findings", Jsonout.List (List.map finding_json r.findings));
      ( "race_candidates",
        Jsonout.List
          (List.map
             (fun (a, b) -> Jsonout.str_list [ a; b ])
             r.race_candidates) );
      ("predicted_necessary", Jsonout.str_list r.predicted_necessary);
      ("over_strong_candidates", Jsonout.str_list r.over_strong);
      ( "stats",
        Jsonout.Obj
          [
            ("scenarios", Jsonout.Int r.stats.scenarios);
            ("threads", Jsonout.Int r.stats.threads);
            ("paths", Jsonout.Int r.stats.paths);
            ("dropped", Jsonout.Int r.stats.dropped);
          ] );
    ]
