open Compass_rmc
open Compass_machine

(** Symbolic evaluation of {!Prog} terms.

    The free monad's continuations are opaque closures, so the analyzer
    {e feeds} each thread program values from an abstract store instead
    of walking an AST: loads fork the path over a bounded candidate set,
    stores feed a shared monotone summary, allocations mint fresh blocks
    merged per allocation-site class (the may-alias abstraction).
    Evaluation is mode-independent — one run serves every hypothetical
    weakening the lints try ({!Lints}). *)

type ekind =
  | ELoad
  | EStore
  | EUpdate of bool  (** RMW; payload is the success flag *)
  | EAwait
  | EFence of Mode.fence
  | EAlloc

type ev = {
  idx : int;  (** position in the path (sequenced-before order) *)
  site : string option;
  ekind : ekind;
  mode : Mode.access;  (** recorded mode (base overrides applied) *)
  loc : Loc.t option;  (** raw location; [None] for fences *)
  cloc : Loc.t option;  (** class-canonical location (may-alias key) *)
  own : bool;  (** the block was allocated on this path *)
  wrote : Value.t option;
  read : Value.t option;
  prov : int option;
      (** index of the event whose read produced the pointer this access
          dereferences — the def-use edge the pairing lint follows *)
}

type path = {
  tid : int;
  events : ev array;
  minted : int list;  (** bases of blocks allocated on this path *)
  truncated : bool;
}

type t = {
  threads : int;
  rounds : int;
  paths : path list;  (** final round only — the most-informed paths *)
  total_paths : int;
  dropped : int;  (** paths cut by exceptions inside continuations *)
}

val site_key : path -> ev -> string
(** the event's site label, or the [unlabeled@loc[tid n]] key matching
    {!Compass_analysis.Races.site_key} for the dynamic cross-check *)

val default_rounds : int
val default_unroll : int
val default_budget : int
val default_max_cands : int

val run :
  ?rounds:int ->
  ?unroll:int ->
  ?budget:int ->
  ?max_cands:int ->
  ?overrides:Override.t ->
  Machine.t ->
  t
(** evaluate a {e built} (never run) machine's spawned programs:
    [rounds] chaotic iterations so one thread's published values reach
    the others, [unroll] visits per site before a path truncates,
    [budget] ops per thread per round, [max_cands] forked values per
    load.  [overrides] are baked into the recorded event modes. *)
