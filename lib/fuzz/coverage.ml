open Compass_rmc
open Compass_machine

(* Execution coverage for schedule fuzzing.

   Two signals, both computed from the recorded access log:

   - a *fingerprint* per execution — an FNV-style fold over the accesses
     (thread, location, kind, mode, message timestamps, site) — so the
     tracker counts how many observably distinct executions a budget
     bought, and the corpus can keep only inputs that reached a new one;

   - *site-pair* coverage: for every access, the most recent prior
     conflicting access by another thread (same location, at least one a
     write) contributes an ordered pair of site labels.  Pairs are the
     classic interleaving-coverage metric: a schedule that first exhibits
     "enqueue's tail CAS before dequeue's head load" covers a pair no
     thread-local run can.

   Both are deterministic functions of the execution, so coverage-guided
   runs stay reproducible for a fixed seed. *)

type feedback = { fresh : bool; new_pairs : int }

type t = {
  fps : (int, unit) Hashtbl.t;
  pairs : (string, unit) Hashtbl.t;
  mutable new_pair_execs : int;
}

let create () =
  { fps = Hashtbl.create 199; pairs = Hashtbl.create 63; new_pair_execs = 0 }

let distinct t = Hashtbl.length t.fps
let pair_count t = Hashtbl.length t.pairs
let new_pair_execs t = t.new_pair_execs

let access_hash (a : Access.t) =
  match a with
  | Access.Access r ->
      Hashtbl.hash
        ( r.tid,
          Loc.hash r.loc,
          Hashtbl.hash r.kind,
          Hashtbl.hash r.mode,
          Hashtbl.hash r.read_ts,
          Hashtbl.hash r.write_ts,
          r.site )
  | Access.Fence r -> Hashtbl.hash (r.tid, Hashtbl.hash r.fence, r.site)

(* FNV-1a-style fold; masked to stay a non-negative OCaml int. *)
let fingerprint accesses =
  List.fold_left
    (fun h a -> ((h * 0x01000193) lxor access_hash a) land max_int)
    0x811c9dc5 accesses

(* A printable label for an access: its site when the program supplied
   one, else kind @ location. *)
let label (a : Access.t) =
  match Access.site a with
  | Some s -> s
  | None -> (
      match a with
      | Access.Access r ->
          let k =
            match r.kind with
            | Access.Load -> "R"
            | Access.Store -> "W"
            | Access.Update -> "U"
          in
          k ^ "@" ^ Loc.to_string r.loc
      | Access.Fence _ -> "F")

(* Record one execution's access log; the returned feedback says whether
   it reached a new fingerprint and how many new site pairs it covered. *)
let note t accesses =
  let fp = fingerprint accesses in
  let fresh = not (Hashtbl.mem t.fps fp) in
  if fresh then Hashtbl.replace t.fps fp ();
  (* last access per (location, thread), to find each access's most
     recent prior conflicting access by another thread in one pass *)
  let last : (int, (int, bool * string * int) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let news = ref 0 in
  List.iter
    (fun (a : Access.t) ->
      match a with
      | Access.Fence _ -> ()
      | Access.Access r ->
          let writes = r.kind <> Access.Load in
          let lbl = label a in
          let per =
            match Hashtbl.find_opt last (Loc.hash r.loc) with
            | Some h -> h
            | None ->
                let h = Hashtbl.create 4 in
                Hashtbl.replace last (Loc.hash r.loc) h;
                h
          in
          let prev =
            Hashtbl.fold
              (fun tid (w, l, aid) acc ->
                if tid <> r.tid && (w || writes) then
                  match acc with
                  | Some (_, aid') when aid' >= aid -> acc
                  | _ -> Some (l, aid)
                else acc)
              per None
          in
          (match prev with
          | Some (plbl, _) ->
              let key = plbl ^ " -> " ^ lbl in
              if not (Hashtbl.mem t.pairs key) then (
                Hashtbl.replace t.pairs key ();
                incr news)
          | None -> ());
          Hashtbl.replace per r.tid (writes, lbl, r.aid))
    accesses;
  if !news > 0 then t.new_pair_execs <- t.new_pair_execs + 1;
  { fresh; new_pairs = !news }

(* Fold [src] into [dst] — how the parallel driver merges per-worker
   trackers (in worker order, for determinism). *)
let merge dst src =
  Hashtbl.iter (fun k () -> Hashtbl.replace dst.fps k ()) src.fps;
  Hashtbl.iter (fun k () -> Hashtbl.replace dst.pairs k ()) src.pairs;
  dst.new_pair_execs <- dst.new_pair_execs + src.new_pair_execs
