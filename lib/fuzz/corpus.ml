open Compass_machine

(* Schedule-prefix corpus for coverage-guided fuzzing.

   Entries are decision-trace prefixes (the logged decision traces of
   executions that reached new coverage).  The guided driver picks an
   entry, mutates it fuzzer-style, and replays it as a prefix with a
   seeded-random tail; mutants are replayed with the *clamped* oracle, so
   an out-of-range choice degrades to the last alternative instead of
   raising — every mutant is runnable (and the driver reports how often
   clamping fired).

   Mutations:
   - truncate: keep a random prefix (the tail is re-randomized by the
     driver's random continuation);
   - flip: overwrite one position with a small random choice;
   - splice: a prefix of one entry followed by the suffix of another —
     crossover between two interesting schedules. *)

type t = { mutable entries : Decision.trace list; mutable n : int }

let create () = { entries = []; n = 0 }
let size t = t.n

(* Keep the corpus bounded: beyond [cap] entries, new ones overwrite a
   random slot (reservoir-ish; the driver's Random.State keeps it
   deterministic).  Slot choice hashes the int script, not the typed
   records, so annotations never affect which entry is evicted. *)
let cap = 256

let add t script =
  if Array.length script = 0 then ()
  else if t.n < cap then (
    t.entries <- script :: t.entries;
    t.n <- t.n + 1)
  else
    let slot = Hashtbl.hash (Decision.choices script) mod cap in
    t.entries <- List.mapi (fun i e -> if i = slot then script else e) t.entries

let to_list t = List.rev t.entries

let pick t st =
  if t.n = 0 then None
  else
    let i = Random.State.int st t.n in
    Some (List.nth t.entries i)

let truncate st s =
  let n = Array.length s in
  Array.sub s 0 (Random.State.int st n)

let flip st s =
  let s = Array.copy s in
  let i = Random.State.int st (Array.length s) in
  s.(i) <- Decision.resolve s.(i) (Random.State.int st 4);
  s

let splice st a b =
  let i = Random.State.int st (Array.length a + 1) in
  let j = Random.State.int st (Array.length b + 1) in
  Array.append (Array.sub a 0 i) (Array.sub b j (Array.length b - j))

(* One mutant of [s]; [other] (a second corpus pick, when available)
   enables splicing. *)
let mutate ?other st s =
  if Array.length s = 0 then [||]
  else
    match (Random.State.int st 3, other) with
    | 0, _ -> truncate st s
    | 1, _ -> flip st s
    | _, Some o -> splice st s o
    | _, None -> flip st s

(* Text persistence: one entry per line — the [--corpus FILE] format.
   Saves write the versioned typed form ({!Decision.to_line}); loads
   accept both that and legacy v1 lines of space-separated choice ints,
   so pre-existing corpora keep replaying unchanged. *)
let save t file =
  let oc = open_out file in
  List.iter
    (fun s ->
      output_string oc (Decision.to_line s);
      output_char oc '\n')
    (List.rev t.entries);
  close_out oc

let load file =
  let t = create () in
  (try
     let ic = open_in file in
     (try
        while true do
          let line = input_line ic in
          match Decision.of_line line with
          | Some tr -> add t tr
          | None -> ()
        done
      with End_of_file -> close_in ic)
   with Sys_error _ -> ());
  t
