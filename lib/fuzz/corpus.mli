open Compass_machine

(** Corpus of schedule prefixes (decision traces that reached new
    coverage), with fuzzer-style mutation: truncate, choice flip, and
    splice between two entries.  Mutants may be invalid scripts; the
    driver replays them clamped, so they never raise. *)

type t

val create : unit -> t
val size : t -> int

val add : t -> Decision.trace -> unit
(** keep an interesting decision trace (bounded; overwrites beyond the
    cap) *)

val to_list : t -> Decision.trace list
(** entries, oldest first (for seeding another corpus or saving) *)

val pick : t -> Random.State.t -> Decision.trace option
val mutate : ?other:Decision.trace -> Random.State.t -> Decision.trace -> Decision.trace

val save : t -> string -> unit
(** one entry per line in the versioned typed form ({!Decision.to_line}) *)

val load : string -> t
(** reads both the versioned form and legacy v1 space-separated-int
    lines; missing file loads as an empty corpus *)
