(** Corpus of schedule prefixes (decision vectors that reached new
    coverage), with fuzzer-style mutation: truncate, choice flip, and
    splice between two entries.  Mutants may be invalid scripts; the
    driver replays them clamped, so they never raise. *)

type t

val create : unit -> t
val size : t -> int

val add : t -> int array -> unit
(** keep an interesting decision vector (bounded; overwrites beyond the
    cap) *)

val to_list : t -> int array list
(** entries, oldest first (for seeding another corpus or saving) *)

val pick : t -> Random.State.t -> int array option
val mutate : ?other:int array -> Random.State.t -> int array -> int array

val save : t -> string -> unit
(** one entry per line, space-separated choices *)

val load : string -> t
(** missing file loads as an empty corpus *)
