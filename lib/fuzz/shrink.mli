open Compass_machine

(** Counterexample shrinking: delta-debug a violating decision trace
    down to a 1-minimal one that still produces a violation with the same
    message.  Candidates replay clamped (never raise; the clamp total is
    reported); results are normalized logged decision traces with
    trailing zeros stripped, so they are valid strict scripts for
    [compass replay]. *)

type stats = {
  replays : int;
  initial_len : int;
  final_len : int;
  clamped : int;  (** out-of-range choices clamped across all replays *)
}

val strip_trailing_zeros : Decision.trace -> Decision.trace
(** drop trailing zeros (choice 0 is the past-the-end replay default, so
    they are redundant in any script) — {!Decision.strip_trailing_zeros} *)

val reproduces :
  ?config:Machine.config ->
  scenario:Explore.scenario ->
  message:string ->
  Decision.trace ->
  bool
(** does the script (replayed clamped) still violate with [message]? *)

val minimize :
  ?config:Machine.config ->
  ?max_replays:int ->
  scenario:Explore.scenario ->
  message:string ->
  Decision.trace ->
  stats * Decision.trace
(** chunk removal, per-choice zeroing, then a 1-minimality fixpoint of
    single removals and single decrements.  Accepted candidates must
    strictly shrink under the (length, sum) lexicographic measure, so the
    search terminates; if the input does not reproduce at all, it is
    returned unchanged. *)
