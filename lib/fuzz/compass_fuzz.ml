(** Schedule fuzzing: search the decision tree instead of enumerating it.

    Where {!Compass_machine.Explore} proves properties of *all*
    executions up to a bound, this subsystem hunts for violating
    executions fast:

    - {!Pct}: Probabilistic Concurrency Testing — priority-based random
      scheduling with [d] priority change points;
    - {!Coverage}: execution fingerprints and site-pair interleaving
      coverage;
    - {!Corpus}: a corpus of schedule prefixes mutated fuzzer-style;
    - {!Shrink}: delta-debugging of violating decision scripts down to
      1-minimal counterexamples;
    - {!Fuzz}: the driver tying them together (uniform / PCT /
      coverage-guided modes, deterministic parallel workers);
    - {!Rng}: splitmix64 seed derivation behind the determinism. *)

module Rng = Rng
module Pct = Pct
module Coverage = Coverage
module Corpus = Corpus
module Shrink = Shrink
module Fuzz = Fuzz
