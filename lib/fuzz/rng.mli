(** Deterministic seed derivation.

    One independent pseudo-random seed per (base seed, stream index)
    pair, via the splitmix64 finalizer — how the fuzzer gives every
    execution (and every worker) its own stream while staying
    byte-identical across [--jobs] counts for a fixed base seed. *)

val derive : int -> int -> int
(** [derive seed i] is a well-mixed non-negative seed for stream [i] *)
