open Compass_machine

(** Probabilistic Concurrency Testing: priority-based random scheduling
    with [depth] priority change points (Burckhardt et al.).  Scheduling
    choices run the highest-priority runnable thread; data choices stay
    seeded-uniform.  Deterministic per seed. *)

val oracle : seed:int -> depth:int -> sched_len:int -> Oracle.t
(** a fresh single-execution oracle; [sched_len] is the expected number
    of branching scheduling decisions, over which the change points are
    sampled uniformly (the fuzz driver measures it with a pilot run) *)
