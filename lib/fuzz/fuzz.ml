open Compass_machine

(* The schedule-fuzzing driver.

   Where the DFS explorer enumerates the decision tree, the fuzzer
   samples it under a *search strategy*:

   - [Uniform]: every choice seeded-uniform — the baseline;
   - [Pct]: scheduling choices priority-driven ({!Pct}), data choices
     uniform;
   - [Guided]: coverage-guided — executions that reach a new fingerprint
     or new site pairs ({!Coverage}) enter a corpus of schedule prefixes
     ({!Corpus}); later executions mutate a corpus entry and replay it as
     a clamped prefix with a random tail.

   Every execution's oracle is derived from [Rng.derive seed i] where [i]
   is the execution's *global* index, and worker [w] of [jobs] runs the
   indices congruent to [w] — so for a fixed seed the run is reproducible
   at any job count, and repeated runs are byte-identical (compare
   {!fingerprint}, which excludes wall-clock time).  Workers stop at
   their own first violation (no cross-worker stop flag: a shared flag
   would make the execution set timing-dependent). *)

type mode = Uniform | Pct | Guided

let mode_name = function
  | Uniform -> "uniform"
  | Pct -> "pct"
  | Guided -> "guided"

let mode_of_string = function
  | "uniform" -> Some Uniform
  | "pct" -> Some Pct
  | "guided" -> Some Guided
  | _ -> None

type options = {
  mode : mode;
  execs : int;
  seed : int;
  jobs : int;
  pct_depth : int;  (** PCT priority change points *)
  sched_len : int;  (** 0: measure with a pilot execution *)
  stop_on_violation : bool;
  max_violations : int;
  shrink : bool;  (** shrink the first violation before reporting *)
  shrink_replays : int;
  corpus_in : Corpus.t option;  (** seed corpus ([--corpus FILE]) *)
  config : Machine.config;
}

let default_options =
  {
    mode = Pct;
    execs = 4000;
    seed = 1;
    jobs = 1;
    pct_depth = 3;
    sched_len = 0;
    stop_on_violation = true;
    max_violations = 4;
    shrink = true;
    shrink_replays = 20_000;
    corpus_in = None;
    config = { Machine.default_config with record_accesses = true };
  }

type outcome = {
  scenario : string;
  mode : mode;
  seed : int;
  jobs : int;
  pct_depth : int;
  execs : int;  (** performed (workers may stop early on violation) *)
  distinct : int;  (** distinct execution fingerprints *)
  pairs : int;  (** site pairs covered *)
  new_pair_execs : int;
  corpus_size : int;
  corpus : Corpus.t;
  clamped : int;
      (** out-of-range choices clamped while replaying corpus-mutant
          prefixes (0 outside guided mode) *)
  violations : Explore.failure list;
      (** oldest first; the first is shrunk when [options.shrink] *)
  first_violation_exec : int option;  (** global execution index *)
  shrink_stats : Shrink.stats option;
  seconds : float;
}

(* A prefix-replay oracle: scripted (clamped, counted into [clamps]) for
   the prefix, seeded random past it — how corpus mutants run. *)
let prefix_oracle ?clamps st prefix =
  Oracle.make ~sched_aware:false (fun ~pos ~arity ~kind:_ ->
      if pos < Array.length prefix then begin
        let c = prefix.(pos).Decision.choice in
        if c >= arity then begin
          (match clamps with Some r -> incr r | None -> ());
          arity - 1
        end
        else c
      end
      else Random.State.int st arity)

(* One pilot execution counting branching scheduling decisions — the
   [sched_len] over which PCT samples its change points. *)
let measure_sched_len ~config ~seed scenario_thunk =
  let scenario : Explore.scenario = scenario_thunk () in
  let st = Random.State.make [| seed; 0x9107 |] in
  let count = ref 0 in
  let oracle =
    Oracle.make (fun ~pos:_ ~arity ~kind ->
        (match kind with Oracle.Sched _ -> incr count | Oracle.Data -> ());
        Random.State.int st arity)
  in
  let m = Machine.create ~config () in
  let judge = scenario.Explore.build m in
  ignore (judge (Machine.run m oracle));
  max !count 8

type worker_result = {
  w_execs : int;
  w_cov : Coverage.t;
  w_corpus : Corpus.t;
  w_clamped : int;
  w_violations : (int * Explore.failure) list;  (** (global index, f) *)
}

let run_worker opts scenario_thunk ~worker ~sched_len =
  let scenario : Explore.scenario = scenario_thunk () in
  let cov = Coverage.create () in
  let corpus = Corpus.create () in
  (match opts.corpus_in with
  | Some c -> List.iter (Corpus.add corpus) (Corpus.to_list c)
  | None -> ());
  let execs = ref 0 in
  let clamps = ref 0 in
  let violations = ref [] in
  let stop = ref false in
  let i = ref worker in
  while (not !stop) && !i < opts.execs do
    let seed_e = Rng.derive opts.seed !i in
    let st = Random.State.make [| seed_e; 0xf12d |] in
    let oracle =
      match opts.mode with
      | Uniform -> Oracle.random ~seed:seed_e
      | Pct -> Pct.oracle ~seed:seed_e ~depth:opts.pct_depth ~sched_len
      | Guided -> (
          match Corpus.pick corpus st with
          | Some base ->
              let other = Corpus.pick corpus st in
              prefix_oracle ~clamps st (Corpus.mutate ?other st base)
          | None -> Oracle.random ~seed:seed_e)
    in
    let m = Machine.create ~config:opts.config () in
    let judge = scenario.Explore.build m in
    let outcome = Machine.run m oracle in
    let verdict = judge outcome in
    incr execs;
    let fb = Coverage.note cov (Machine.accesses m) in
    let tr = Decision.strip_trailing_zeros (Oracle.trace oracle) in
    if fb.Coverage.fresh || fb.Coverage.new_pairs > 0 then
      Corpus.add corpus tr;
    (match verdict with
    | Explore.Violation msg ->
        violations := (!i, { Explore.message = msg; trace = tr }) :: !violations;
        if opts.stop_on_violation then stop := true
    | Explore.Pass | Explore.Discard _ -> ());
    i := !i + opts.jobs
  done;
  {
    w_execs = !execs;
    w_cov = cov;
    w_corpus = corpus;
    w_clamped = !clamps;
    w_violations = List.rev !violations;
  }

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let run ?(options = default_options) scenario_thunk =
  let t0 = Unix.gettimeofday () in
  let opts =
    { options with execs = max options.execs 0; jobs = max options.jobs 1 }
  in
  let name = (scenario_thunk () : Explore.scenario).Explore.name in
  let sched_len =
    if opts.sched_len > 0 then opts.sched_len
    else if opts.mode = Pct then
      measure_sched_len ~config:opts.config ~seed:opts.seed scenario_thunk
    else 1
  in
  let results =
    if opts.jobs = 1 then [ run_worker opts scenario_thunk ~worker:0 ~sched_len ]
    else
      List.init opts.jobs (fun w ->
          Domain.spawn (fun () ->
              run_worker opts scenario_thunk ~worker:w ~sched_len))
      |> List.map Domain.join
  in
  (* merge in worker order — deterministic *)
  let cov = Coverage.create () in
  List.iter (fun r -> Coverage.merge cov r.w_cov) results;
  let corpus = Corpus.create () in
  List.iter
    (fun r -> List.iter (Corpus.add corpus) (Corpus.to_list r.w_corpus))
    results;
  let execs = List.fold_left (fun a r -> a + r.w_execs) 0 results in
  let clamped = List.fold_left (fun a r -> a + r.w_clamped) 0 results in
  let all =
    List.concat_map (fun r -> r.w_violations) results
    |> List.sort (fun (i, _) (j, _) -> compare i j)
  in
  let first_violation_exec =
    match all with [] -> None | (i, _) :: _ -> Some i
  in
  let kept = take opts.max_violations (List.map snd all) in
  let shrink_stats = ref None in
  let kept =
    match kept with
    | f :: rest when opts.shrink ->
        let stats, small =
          Shrink.minimize ~config:opts.config ~max_replays:opts.shrink_replays
            ~scenario:(scenario_thunk ()) ~message:f.Explore.message
            f.Explore.trace
        in
        shrink_stats := Some stats;
        { f with Explore.trace = small } :: rest
    | ks -> ks
  in
  {
    scenario = name;
    mode = opts.mode;
    seed = opts.seed;
    jobs = opts.jobs;
    pct_depth = opts.pct_depth;
    execs;
    distinct = Coverage.distinct cov;
    pairs = Coverage.pair_count cov;
    new_pair_execs = Coverage.new_pair_execs cov;
    corpus_size = Corpus.size corpus;
    corpus;
    clamped;
    violations = kept;
    first_violation_exec;
    shrink_stats = !shrink_stats;
    seconds = Unix.gettimeofday () -. t0;
  }

(* Canonical deterministic projection of an outcome — everything except
   wall-clock time and the corpus value itself.  Two runs with the same
   options produce equal fingerprints; the determinism tests compare
   these. *)
let fingerprint o =
  let script s =
    String.concat ","
      (List.map string_of_int (Array.to_list (Decision.choices s)))
  in
  let viols =
    List.map
      (fun (f : Explore.failure) ->
        Printf.sprintf "%s:[%s]" f.message (script f.trace))
      o.violations
  in
  Printf.sprintf
    "%s|mode=%s|seed=%d|jobs=%d|depth=%d|execs=%d|distinct=%d|pairs=%d|npe=%d|corpus=%d|clamped=%d|first=%s|%s"
    o.scenario (mode_name o.mode) o.seed o.jobs o.pct_depth o.execs o.distinct
    o.pairs o.new_pair_execs o.corpus_size o.clamped
    (match o.first_violation_exec with
    | None -> "-"
    | Some i -> string_of_int i)
    (String.concat ";" viols)

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s: %d fuzz executions (mode %s, seed %d%s%s)@ coverage: %d \
     distinct executions, %d site pairs, %d execs found new pairs, corpus \
     %d%s@ %a@]"
    o.scenario o.execs (mode_name o.mode) o.seed
    (if o.mode = Pct then Printf.sprintf ", depth %d" o.pct_depth else "")
    (if o.jobs > 1 then Printf.sprintf ", %d jobs" o.jobs else "")
    o.distinct o.pairs o.new_pair_execs o.corpus_size
    (if o.clamped > 0 then Printf.sprintf ", %d choices clamped" o.clamped
     else "")
    (fun ppf o ->
      match (o.first_violation_exec, o.violations) with
      | None, _ | _, [] -> Format.fprintf ppf "no violation found"
      | Some i, f :: _ ->
          Format.fprintf ppf "first violation at execution %d%s@ - %s@ - script [%s]"
            i
            (match o.shrink_stats with
            | Some (s : Shrink.stats) ->
                Printf.sprintf
                  " (script %d -> %d choices, %d shrink replays%s)"
                  s.initial_len s.final_len s.replays
                  (if s.clamped > 0 then
                     Printf.sprintf ", %d clamped" s.clamped
                   else "")
            | None -> "")
            f.Explore.message
            (String.concat " "
               (List.map string_of_int
                  (Array.to_list (Decision.choices f.Explore.trace)))))
    o

let outcome_to_json o =
  let open Compass_util in
  Jsonout.Obj
    [
      ("scenario", Jsonout.Str o.scenario);
      ("mode", Jsonout.Str (mode_name o.mode));
      ("seed", Jsonout.Int o.seed);
      ("jobs", Jsonout.Int o.jobs);
      ("pct_depth", Jsonout.Int o.pct_depth);
      ("execs", Jsonout.Int o.execs);
      ("distinct", Jsonout.Int o.distinct);
      ("pairs", Jsonout.Int o.pairs);
      ("new_pair_execs", Jsonout.Int o.new_pair_execs);
      ("corpus_size", Jsonout.Int o.corpus_size);
      ("clamped", Jsonout.Int o.clamped);
      ( "first_violation_exec",
        Jsonout.opt (fun i -> Jsonout.Int i) o.first_violation_exec );
      ( "violations",
        Jsonout.List
          (List.map
             (fun (f : Explore.failure) ->
               Jsonout.Obj
                 [
                   ("message", Jsonout.Str f.message);
                   ("script", Jsonout.int_array (Explore.failure_script f));
                   ("trace", Decision.trace_to_json f.trace);
                 ])
             o.violations) );
      ( "shrink",
        Jsonout.opt
          (fun (s : Shrink.stats) ->
            Jsonout.Obj
              [
                ("replays", Jsonout.Int s.replays);
                ("initial_len", Jsonout.Int s.initial_len);
                ("final_len", Jsonout.Int s.final_len);
                ("clamped", Jsonout.Int s.clamped);
              ])
          o.shrink_stats );
      ("seconds", Jsonout.Float o.seconds);
    ]
