open Compass_machine

(** The schedule-fuzzing driver: sample the decision tree under a search
    strategy instead of enumerating it.  Deterministic for a fixed seed
    at any job count (per-execution seeds derive from the global
    execution index); workers stop at their own first violation. *)

type mode =
  | Uniform  (** every choice seeded-uniform — the baseline *)
  | Pct  (** priority-based scheduling with change points ({!Pct}) *)
  | Guided  (** coverage-guided corpus mutation ({!Corpus}) *)

val mode_name : mode -> string
val mode_of_string : string -> mode option

type options = {
  mode : mode;
  execs : int;
  seed : int;
  jobs : int;
  pct_depth : int;  (** PCT priority change points *)
  sched_len : int;  (** 0: measure with a pilot execution *)
  stop_on_violation : bool;
  max_violations : int;
  shrink : bool;  (** shrink the first violation before reporting *)
  shrink_replays : int;
  corpus_in : Corpus.t option;  (** seed corpus ([--corpus FILE]) *)
  config : Machine.config;
}

val default_options : options
(** [Pct], 4000 executions, seed 1, depth 3, shrink on, accesses
    recorded (coverage needs the access log) *)

type outcome = {
  scenario : string;
  mode : mode;
  seed : int;
  jobs : int;
  pct_depth : int;
  execs : int;  (** performed (workers may stop early on violation) *)
  distinct : int;  (** distinct execution fingerprints *)
  pairs : int;  (** site pairs covered *)
  new_pair_execs : int;
  corpus_size : int;
  corpus : Corpus.t;
  clamped : int;
      (** out-of-range choices clamped while replaying corpus-mutant
          prefixes (0 outside guided mode) *)
  violations : Explore.failure list;
      (** oldest first; the first is shrunk when [options.shrink] *)
  first_violation_exec : int option;  (** global execution index *)
  shrink_stats : Shrink.stats option;
  seconds : float;
}

val run : ?options:options -> (unit -> Explore.scenario) -> outcome
(** fuzz one scenario; the thunk builds a fresh scenario per worker (so
    scenario-closure statistics never race) *)

val prefix_oracle :
  ?clamps:int ref -> Random.State.t -> Decision.trace -> Oracle.t
(** clamped prefix replay with a seeded-random tail; each out-of-range
    prefix choice degrades to the last alternative and bumps [clamps]
    (exposed for tests) *)

val measure_sched_len :
  config:Machine.config -> seed:int -> (unit -> Explore.scenario) -> int
(** branching scheduling decisions of one pilot execution (>= 8) *)

val fingerprint : outcome -> string
(** canonical projection of everything deterministic (excludes wall-clock
    time) — equal across repeated runs with equal options *)

val pp_outcome : Format.formatter -> outcome -> unit
val outcome_to_json : outcome -> Compass_util.Jsonout.t
