open Compass_machine

(* Probabilistic Concurrency Testing (Burckhardt et al., ASPLOS 2010),
   adapted to the oracle interface.

   Each thread gets a random distinct base priority above [depth], and
   [depth] priority *change points* are sampled uniformly over the
   scheduling steps of the execution.  At every scheduling decision the
   highest-priority runnable thread runs; when the step counter hits a
   change point, that thread's priority drops below every base priority
   (to a strictly decreasing value, so later drops rank below earlier
   ones).  A bug that needs [d] ordering constraints between specific
   instructions is found with probability >= 1/(n * k^(d-1)) per run —
   far better than uniform random for small-depth bugs.

   Only scheduling choices are priority-driven: the machine tags them
   [Oracle.Sched tids], and the tids let priorities follow threads, not
   choice indices (the set of runnable threads shifts as threads block
   and finish).  Data choices — which message a load reads, which
   timestamp a write takes — stay seeded-uniform, because PCT's theory
   covers scheduling only.

   [sched_len] is the expected number of *branching* scheduling decisions
   (the machine never consults the oracle when one thread is runnable);
   the fuzz driver measures it with a pilot execution. *)

let oracle ~seed ~depth ~sched_len =
  let st = Random.State.make [| seed; 0x9c71 |] in
  let sched_len = max sched_len 1 in
  (* Change points, keyed by scheduling-step index (collisions merge,
     which only lowers the effective depth — harmless). *)
  let changes = Hashtbl.create 8 in
  for _ = 1 to depth do
    Hashtbl.replace changes (1 + Random.State.int st sched_len) ()
  done;
  (* Base priorities: assigned on first sight, distinct, above [depth] so
     every change-point priority ranks below every base priority. *)
  let prio = Hashtbl.create 8 in
  let used = Hashtbl.create 8 in
  let priority tid =
    match Hashtbl.find_opt prio tid with
    | Some p -> p
    | None ->
        let rec fresh () =
          let p = depth + 1 + Random.State.int st 0x10000 in
          if Hashtbl.mem used p then fresh () else p
        in
        let p = fresh () in
        Hashtbl.replace used p ();
        Hashtbl.replace prio tid p;
        p
  in
  let step = ref 0 in
  let low = ref depth in
  Oracle.make (fun ~pos:_ ~arity ~kind ->
      match kind with
      | Oracle.Data -> Random.State.int st arity
      | Oracle.Sched tids ->
          incr step;
          let best = ref 0 in
          for i = 1 to Array.length tids - 1 do
            if priority tids.(i) > priority tids.(!best) then best := i
          done;
          if Hashtbl.mem changes !step then (
            Hashtbl.remove changes !step;
            Hashtbl.replace prio tids.(!best) !low;
            decr low);
          !best)
