(* Deterministic seed derivation (splitmix64 finalizer).

   The fuzzer derives one independent seed per (base seed, execution
   index) pair, so a run parallelised over [--jobs n] workers executes
   exactly the same set of seeded executions as the sequential run — the
   workers just interleave them.  That is what makes fuzzing outcomes
   byte-identical across job counts for a fixed seed. *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* A well-mixed non-negative seed for stream [i] of base [seed]. *)
let derive seed i =
  let open Int64 in
  let z = add (of_int seed) (mul (of_int (i + 1)) 0x9E3779B97F4A7C15L) in
  to_int (logand (mix64 z) 0x3FFFFFFFFFFFFFFFL)
