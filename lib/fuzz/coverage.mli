open Compass_machine

(** Execution coverage: per-execution fingerprints (a deterministic hash
    of the access log) and site-pair interleaving coverage (for each
    access, the most recent prior conflicting access by another thread).
    Feeds the corpus of the coverage-guided fuzzing mode. *)

type t

type feedback = {
  fresh : bool;  (** the execution reached a fingerprint not seen before *)
  new_pairs : int;  (** site pairs first covered by this execution *)
}

val create : unit -> t

val fingerprint : Access.t list -> int
(** deterministic hash of an access log (non-negative) *)

val note : t -> Access.t list -> feedback
(** record one execution's access log *)

val distinct : t -> int
(** number of distinct fingerprints seen *)

val pair_count : t -> int
(** number of site pairs covered *)

val new_pair_execs : t -> int
(** executions that covered at least one new pair *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst] (parallel-worker merge) *)
