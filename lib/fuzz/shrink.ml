open Compass_machine

(* Counterexample shrinking: delta-debugging over decision scripts.

   A violating execution is identified by its decision trace.  The
   shrinker looks for a smaller script that still produces a violation
   with the *same message* (so it witnesses the same bug, not a different
   one found along the way):

   1. chunk removal, ddmin-style — delete chunks of halving size;
   2. per-choice zeroing — set each nonzero choice to 0 (choice 0 is the
      replay default, so zeros at the tail disappear entirely);
   3. a 1-minimality fixpoint — retry every single-element removal and
      every single-choice decrement until none reproduces.

   Candidates replay with the clamped oracle (an out-of-range choice
   degrades to the last alternative, never raises; the total is reported
   in {!stats.clamped}); an accepted candidate is *normalized* to the
   decision trace the run actually logged, with trailing zeros stripped —
   always a valid strict script, and the form [compass replay] consumes.
   Acceptance requires the normalized form to strictly shrink under the
   (length, sum-of-choices) lexicographic measure, which is well-founded:
   the shrinker terminates even though normalization can lengthen a
   candidate (a shorter prefix can steer the execution down a deeper
   path). *)

type stats = {
  replays : int;
  initial_len : int;
  final_len : int;
  clamped : int;  (** out-of-range choices clamped across all replays *)
}

let measure = Decision.measure
let strip_trailing_zeros = Decision.strip_trailing_zeros

let run_clamped ~config scenario script =
  let m = Machine.create ~config () in
  let judge = scenario.Explore.build m in
  let oracle = Oracle.script_clamped script in
  let outcome = Machine.run m oracle in
  (oracle, judge outcome)

(* Does [script] (replayed clamped) still produce the target violation? *)
let reproduces ?(config = Machine.default_config) ~scenario ~message script =
  match run_clamped ~config scenario script with
  | _, Explore.Violation m -> m = message
  | _ -> false

let remove_chunk s i len =
  let n = Array.length s in
  Array.append (Array.sub s 0 i) (Array.sub s (i + len) (n - i - len))

let minimize ?(config = Machine.default_config) ?(max_replays = 20_000)
    ~scenario ~(message : string) (script0 : Decision.trace) =
  let replays = ref 0 in
  let clamped = ref 0 in
  (* Replay a candidate; on reproduction return its normalized form if
     strictly smaller than [cur], else None. *)
  let try_smaller cur cand =
    if !replays >= max_replays then None
    else (
      incr replays;
      match run_clamped ~config scenario cand with
      | oracle, Explore.Violation m when m = message ->
          clamped := !clamped + Oracle.clamp_count oracle;
          let norm = strip_trailing_zeros (Oracle.trace oracle) in
          if measure norm < measure cur then Some norm else None
      | oracle, _ ->
          clamped := !clamped + Oracle.clamp_count oracle;
          None)
  in
  (* Normalize the input itself first (its logged trace can differ from
     the given script when the script over- or under-runs the path). *)
  let start =
    incr replays;
    match run_clamped ~config scenario script0 with
    | oracle, Explore.Violation m when m = message ->
        clamped := !clamped + Oracle.clamp_count oracle;
        Some (strip_trailing_zeros (Oracle.trace oracle))
    | oracle, _ ->
        clamped := !clamped + Oracle.clamp_count oracle;
        None
  in
  match start with
  | None ->
      (* not reproducible under this config — hand the script back *)
      ({ replays = !replays; initial_len = Array.length script0;
         final_len = Array.length script0; clamped = !clamped },
       script0)
  | Some start ->
      let best = ref start in
      (* Phase 1: chunk removal with halving chunk sizes. *)
      let chunk = ref (max 1 (Array.length !best / 2)) in
      while !chunk >= 1 && !replays < max_replays do
        let i = ref 0 in
        while !i < Array.length !best && !replays < max_replays do
          let len = min !chunk (Array.length !best - !i) in
          (match try_smaller !best (remove_chunk !best !i len) with
          | Some norm -> best := norm (* retry the same offset *)
          | None -> i := !i + len)
        done;
        chunk := if !chunk = 1 then 0 else !chunk / 2
      done;
      (* Phase 2: zero each nonzero choice. *)
      let i = ref 0 in
      while !i < Array.length !best && !replays < max_replays do
        (if !best.(!i).Decision.choice > 0 then
           let cand = Array.copy !best in
           cand.(!i) <- Decision.zeroed cand.(!i);
           match try_smaller !best cand with
           | Some norm -> best := norm
           | None -> ());
        incr i
      done;
      (* Phase 3: 1-minimality fixpoint — single removals and single
         decrements until neither reproduces. *)
      let improved = ref true in
      while !improved && !replays < max_replays do
        improved := false;
        let i = ref 0 in
        while !i < Array.length !best && !replays < max_replays do
          (match try_smaller !best (remove_chunk !best !i 1) with
          | Some norm ->
              best := norm;
              improved := true
          | None ->
              if !best.(!i).Decision.choice > 0 then (
                let cand = Array.copy !best in
                cand.(!i) <- Decision.resolve cand.(!i) (cand.(!i).Decision.choice - 1);
                match try_smaller !best cand with
                | Some norm ->
                    best := norm;
                    improved := true
                | None -> incr i)
              else incr i)
        done
      done;
      ( {
          replays = !replays;
          initial_len = Array.length script0;
          final_len = Array.length !best;
          clamped = !clamped;
        },
        !best )
