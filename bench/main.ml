(* COMPASS-OCaml benchmark harness.

   One Bechamel group per experiment of DESIGN.md's index (E1-E6; E7 is a
   report, produced by [bin/compass report]).  The paper's evaluation is a
   body of verifications, so what we measure is the *cost of checking*: the
   model checker's execution throughput per structure and client, and the
   per-execution cost of each spec-style checker — the operational
   counterpart of proof effort.  Absolute numbers are machine-dependent;
   the interesting shape is the relative cost of spec styles (LAThist's
   search > graph checks > abstract-state replay) and of structures
   (elimination stack > its parts). *)

open Bechamel
open Toolkit
open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients
open Compass_util
module Fz = Compass_fuzz

let vi n = Value.Int n

(* Structures resolve through the central spec registry, like the CLI. *)
let queue_factory key =
  match Specreg.find key with
  | Some { Compass_spec.Libspec.impl = Specreg.Queue f; _ } -> f
  | _ -> failwith ("no registered queue implementation: " ^ key)

let stack_factory key =
  match Specreg.find key with
  | Some { Compass_spec.Libspec.impl = Specreg.Stack f; _ } -> f
  | _ -> failwith ("no registered stack implementation: " ^ key)

(* -- graph sampling: one representative finished execution ------------------- *)

let sample_queue_graph (factory : Iface.queue_factory) ~enqers ~deqers ~ops
    ~seed =
  let rec try_seed seed =
    let m = Machine.create () in
    let q = factory.make_queue m ~name:"q" in
    Machine.spawn m
      (List.init enqers (fun tid ->
           Prog.returning_unit
             (Prog.for_ 0 (ops - 1) (fun i ->
                  q.Iface.enq (Harness.val_of ~tid ~i))))
      @ List.init deqers (fun _ ->
            Prog.returning_unit
              (Prog.for_ 0 (ops - 1) (fun _ ->
                   Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ())))));
    match Machine.run m (Oracle.random ~seed) with
    | Machine.Finished _ -> q.Iface.q_graph
    | _ -> try_seed (seed + 1)
  in
  try_seed seed

let sample_stack_graph (factory : Iface.stack_factory) ~pushers ~poppers ~ops
    ~seed =
  let rec try_seed seed =
    let m = Machine.create () in
    let s = factory.make_stack m ~name:"s" in
    Machine.spawn m
      (List.init pushers (fun tid ->
           Prog.returning_unit
             (Prog.for_ 0 (ops - 1) (fun i ->
                  s.Iface.push (Harness.val_of ~tid ~i))))
      @ List.init poppers (fun _ ->
            Prog.returning_unit
              (Prog.for_ 0 (ops - 1) (fun _ ->
                   Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ())))));
    match Machine.run m (Oracle.random ~seed) with
    | Machine.Finished _ -> s.Iface.s_graph
    | _ -> try_seed (seed + 1)
  in
  try_seed seed

let explore_n ~execs sc () = ignore (Explore.random ~execs ~seed:17 sc)

(* -- E1: the MP client (Figure 1 + Figure 3) --------------------------------- *)

let e1_mp =
  Test.make_grouped ~name:"E1-mp"
    [
      Test.make ~name:"ms-queue/rel-acq"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make Msqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"ms-queue/weak-flag"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make_weak Msqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"hw-queue/rel-acq"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make Hwqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"hw-queue/weak-flag"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make_weak Hwqueue.instantiate (Mp.fresh_stats ())) ()));
    ]

(* -- E2: spec-style matrix — per-execution checking cost --------------------- *)

let e2_matrix =
  let ms = sample_queue_graph Msqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:3 in
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:3 in
  let tr = sample_stack_graph Treiber.instantiate ~pushers:2 ~poppers:2 ~ops:2 ~seed:3 in
  let mk name style kind g =
    Test.make ~name (Staged.stage (fun () -> ignore (Styles.check style kind g)))
  in
  Test.make_grouped ~name:"E2-spec-styles"
    [
      mk "ms/LATso-abs" Styles.So_abs Styles.Queue ms;
      mk "ms/LAThb" Styles.Hb Styles.Queue ms;
      mk "ms/LAThb-abs" Styles.Hb_abs Styles.Queue ms;
      mk "ms/LAThist" Styles.Hist Styles.Queue ms;
      mk "hw/LAThb" Styles.Hb Styles.Queue hw;
      mk "hw/LAThist" Styles.Hist Styles.Queue hw;
      mk "treiber/LAThb" Styles.Hb Styles.Stack tr;
      mk "treiber/LAThist" Styles.Hist Styles.Stack tr;
    ]

(* -- E3: Herlihy-Wing — abstract states vs graph conditions ------------------ *)

let e3_hw =
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:3 ~deqers:2 ~ops:2 ~seed:5 in
  Test.make_grouped ~name:"E3-hw-queue"
    [
      Test.make ~name:"abstract-state-replay"
        (Staged.stage (fun () -> ignore (Queue_spec.abstract_state hw)));
      Test.make ~name:"graph-consistency"
        (Staged.stage (fun () -> ignore (Queue_spec.consistent hw)));
      Test.make ~name:"explore"
        (Staged.stage
           (explore_n ~execs:20
              (Harness.queue_workload Hwqueue.instantiate ~enqers:2 ~deqers:2
                 ~ops:2 ())));
    ]

(* -- E4: SPSC and the two-queue pipeline (Section 3.2) ------------------------ *)

let e4_spsc =
  Test.make_grouped ~name:"E4-spsc"
    [
      Test.make ~name:"ms-queue"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Spsc_client.make ~n:3 Msqueue.instantiate (Spsc_client.fresh_stats ()))
               ()));
      Test.make ~name:"hw-queue"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Spsc_client.make ~n:3 Hwqueue.instantiate (Spsc_client.fresh_stats ()))
               ()));
      Test.make ~name:"pipeline-ms-hw"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Pipeline.make ~n:2 Msqueue.instantiate Hwqueue.instantiate
                  (Pipeline.fresh_stats ()))
               ()));
    ]

(* -- E5: Treiber LAThist — commit order vs search (Figure 4) ------------------ *)

let e5_linearize =
  let tr = sample_stack_graph Treiber.instantiate ~pushers:2 ~poppers:2 ~ops:2 ~seed:9 in
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:9 in
  Test.make_grouped ~name:"E5-linearize"
    [
      Test.make ~name:"treiber/commit-order"
        (Staged.stage (fun () ->
             ignore (Linearize.commit_order_valid Linearize.Stack tr)));
      Test.make ~name:"treiber/search"
        (Staged.stage (fun () -> ignore (Linearize.search Linearize.Stack tr)));
      Test.make ~name:"hw/search"
        (Staged.stage (fun () -> ignore (Linearize.search Linearize.Queue hw)));
    ]

(* -- E6: exchanger and elimination stack (Section 4) -------------------------- *)

let e6_exchanger =
  Test.make_grouped ~name:"E6-exchanger-es"
    [
      Test.make ~name:"exchanger-pair"
        (Staged.stage
           (explore_n ~execs:20 (Harness.exchanger_workload ~threads:2 ())));
      Test.make ~name:"resource-exchange"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Resource_exchange.make ~threads:2 (Resource_exchange.fresh_stats ()))
               ()));
      Test.make ~name:"treiber-workload"
        (Staged.stage
           (explore_n ~execs:10
              (Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:2
                 ~ops:1 ())));
      Test.make ~name:"es-workload"
        (Staged.stage
           (explore_n ~execs:10
              (Harness.stack_workload Elimination.instantiate ~pushers:2
                 ~poppers:2 ~ops:1 ())));
      Test.make ~name:"es-compose-check"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Es_compose.make ~pushers:2 ~poppers:2 ~ops:1
                  (Es_compose.fresh_stats ()))
               ()));
    ]

(* -- E8: Chase-Lev work-stealing deque (Section 6 future work) ----------------- *)

let e8_chaselev =
  Test.make_grouped ~name:"E8-chaselev"
    [
      Test.make ~name:"explore-sc-fences"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1
                  (Ws_client.fresh_stats ()))
               ()));
      Test.make ~name:"explore-weak-fences"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2
                  (Ws_client.fresh_stats ()))
               ()));
      Test.make ~name:"explore-contended"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Ws_client.make ~tasks:3 ~thieves:2 ~steals:2
                  (Ws_client.fresh_stats ()))
               ()));
    ]

(* -- substrate microbenchmarks ------------------------------------------------ *)

let micro =
  let view =
    List.fold_left
      (fun v i -> View.extend v (Loc.make ~base:i ~off:0) i)
      View.bot
      (List.init 16 (fun i -> i))
  in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"view-join"
        (Staged.stage (fun () -> ignore (View.join view view)));
      Test.make ~name:"machine-steps-1k"
        (Staged.stage (fun () ->
             let m = Machine.create () in
             let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
             ignore
               (Machine.solo m
                  (Prog.map
                     (Prog.for_ 1 500 (fun _ ->
                          Prog.bind (Prog.load x Mode.Rlx) (fun _ ->
                              Prog.store x (vi 1) Mode.Rlx)))
                     (fun () -> Value.Unit)))));
      Test.make ~name:"solo-msqueue-5-enq-deq"
        (Staged.stage (fun () ->
             let m = Machine.create () in
             let t = Msqueue.create m ~name:"q" in
             ignore
               (Machine.solo m
                  (Prog.map
                     (Prog.for_ 1 5 (fun i ->
                          Prog.bind (Msqueue.enq t (vi i)) (fun () ->
                              Prog.bind (Msqueue.deq t) (fun _ -> Prog.return ()))))
                     (fun () -> Value.Unit)))));
    ]

(* -- scaling: checker cost vs history size ------------------------------------- *)

(* Build progressively larger stack graphs (sequentially, so they are
   valid) and measure how each checker's cost grows — the operational
   analogue of "proof effort scales with history length". *)
let scaling =
  let graph_of_size n =
    let m = Machine.create () in
    let t = Treiber.create ~fuel:64 m ~name:"s" in
    ignore
      (Machine.solo m
         (Prog.map
            (Prog.for_ 1 n (fun i ->
                 Prog.bind (Treiber.push t (vi i)) (fun () ->
                     if i mod 2 = 0 then
                       Prog.bind (Treiber.pop t) (fun _ -> Prog.return ())
                     else Prog.return ())))
            (fun () -> Value.Unit)));
    Treiber.graph t
  in
  let sizes = [ 4; 8; 16; 32 ] in
  Test.make_grouped ~name:"scaling"
    (List.concat_map
       (fun n ->
         let g = graph_of_size n in
         [
           Test.make
             ~name:(Printf.sprintf "graph-consistency/%d-ops" n)
             (Staged.stage (fun () -> ignore (Stack_spec.consistent g)));
           Test.make
             ~name:(Printf.sprintf "linearize-search/%d-ops" n)
             (Staged.stage (fun () ->
                  ignore (Linearize.search Linearize.Stack g)));
         ])
       sizes)

(* -- explore-throughput mode (--explore [--quick] [--check]) -------------------

   Machine-readable exploration throughput, written to BENCH_explore.json:
   for each scenario,

   - "sequential"          — replay-from-root DFS ([~incremental:false]),
                             the differential-testing oracle;
   - "incremental"         — the default checkpoint/restore engine;
   - "incremental_reduced" — the same engine with sleep-set reduction;
   - "incremental_dpor"    — the same engine under source-DPOR with
                             wakeup sequences (strictly fewer executions
                             than sleep sets on a complete search);
   - "pdfs"                — the sharded parallel driver at 1/2/4 domains
                             (each worker owns a per-domain incremental
                             engine).

   Both reduction rows carry a "reduction_factor" column: full-tree
   executions over reduced executions (higher = stronger reduction).

   The report fields are exact whatever the mode; wall-clock speedups
   depend on the host.  Multi-domain pdfs rows are skipped (and marked as
   such) when the host only recommends one domain — a 1-core box cannot
   exhibit parallel speedup, only scheduling noise.  [--check] exits
   nonzero if the incremental engine is slower than sequential replay on
   any scenario: the CI perf-smoke gate. *)

let write_json_file file json =
  let s = Report.to_string ~tool:"bench" json in
  let oc = open_out file in
  output_string oc s;
  close_out oc;
  print_string s;
  Format.printf "wrote %s@." file

(* Timed run with allocation telemetry: wall clock plus [Gc.quick_stat]
   deltas (minor words allocated, major collections forced) — the
   flat-buffer core is judged on allocation per execution as much as on
   throughput. *)
let time_gc f =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let t = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  ( r,
    t,
    g1.Gc.minor_words -. g0.Gc.minor_words,
    g1.Gc.major_collections - g0.Gc.major_collections )

let bench_explore ~quick ~check ~force_jobs =
  let max_execs = if quick then 2_000 else 20_000 in
  let scenarios =
    [
      ( "mp-queue",
        fun () -> Mp.make (queue_factory "ms") (Mp.fresh_stats ()) );
      ( "hw-queue",
        fun () ->
          Harness.queue_workload (queue_factory "hw") ~enqers:2 ~deqers:1
            ~ops:1 () );
      ( "treiber",
        fun () ->
          Harness.stack_workload (stack_factory "treiber") ~pushers:2
            ~poppers:1 ~ops:2 () );
    ]
  in
  (* The host's usable parallelism.  [recommended_domain_count] reflects
     the actual CPU budget (cgroup/affinity aware), unlike raw core
     counts; [--force-jobs] runs the multi-domain rows anyway — useful
     for differential correctness runs on starved hosts, meaningless for
     speedup numbers. *)
  let domains = Domain.recommended_domain_count () in
  let rate (r : Explore.report) t =
    if t > 0. then float_of_int r.Explore.executions /. t else 0.
  in
  let slow = ref []
  and inc_speedups = ref []
  and flat_ratios = ref []
  and reduction_gaps = ref []
  and scale4 = ref [] in
  let run_row (r : Explore.report) (t, minor, majors) extra =
    let per_exec x = x /. float_of_int (max 1 r.Explore.executions) in
    Jsonout.Obj
      ([
         ("executions", Jsonout.Int r.Explore.executions);
         ("complete", Jsonout.Bool r.Explore.complete);
         ("seconds", Jsonout.Float t);
         ("execs_per_sec", Jsonout.Float (rate r t));
         ("minor_words_per_exec", Jsonout.Float (per_exec minor));
         ("major_collections", Jsonout.Int majors);
       ]
      @ extra)
  in
  let scenario_json (name, mk) =
    let seq, seq_t, seq_mw, seq_mc =
      time_gc (fun () -> Explore.dfs ~max_execs ~incremental:false (mk ()))
    in
    let inc, inc_t, inc_mw, inc_mc =
      time_gc (fun () -> Explore.dfs ~max_execs (mk ()))
    in
    if rate inc inc_t < rate seq seq_t then slow := name :: !slow;
    inc_speedups :=
      (name, if rate seq seq_t > 0. then rate inc inc_t /. rate seq seq_t else 0.)
      :: !inc_speedups;
    (* The same incremental exploration against the map-backend oracle:
       the within-host measure of what the flat data plane buys, and the
       host-independent CI gate (both runs share whatever hardware this
       is). *)
    let map_config = { Machine.default_config with Machine.backend = `Map } in
    let map, map_t, map_mw, map_mc =
      time_gc (fun () -> Explore.dfs ~max_execs ~config:map_config (mk ()))
    in
    let flat_ratio =
      if inc_t > 0. then rate inc inc_t /. rate map map_t else 0.
    in
    flat_ratios := (name, flat_ratio) :: !flat_ratios;
    let speedup t =
      ( "speedup_vs_sequential",
        Jsonout.Float (if t > 0. then seq_t /. t else 0.) )
    in
    let pdfs_jobs1_t = ref 0. in
    let pdfs_row jobs =
      if jobs > 1 && domains < jobs && not force_jobs then begin
        let why =
          Printf.sprintf
            "host recommends %d domain(s); rerun with --force-jobs for a \
             correctness (not speedup) row"
            domains
        in
        Format.eprintf "bench: %s: skipping pdfs jobs=%d row: %s@." name jobs
          why;
        Jsonout.Obj
          [ ("jobs", Jsonout.Int jobs); ("skipped", Jsonout.Str why) ]
      end
      else begin
        let r, t, mw, mc =
          time_gc (fun () -> Explore.pdfs ~jobs ~max_execs (mk ()))
        in
        if jobs = 1 then pdfs_jobs1_t := t;
        if jobs = 4 && domains >= 4 && !pdfs_jobs1_t > 0. && t > 0. then
          scale4 := (name, !pdfs_jobs1_t /. t) :: !scale4;
        let forced =
          if jobs > 1 && domains < jobs then
            [ ("forced", Jsonout.Bool true) ]
          else []
        in
        match run_row r (t, mw, mc) (speedup t :: forced) with
        | Jsonout.Obj fields ->
            Jsonout.Obj (("jobs", Jsonout.Int jobs) :: fields)
        | j -> j
      end
    in
    let pdfs_rows = List.map pdfs_row [ 1; 2; 4 ] in
    let red, red_t, red_mw, red_mc =
      time_gc (fun () ->
          Explore.dfs ~reduce:Machine.RSleep ~max_execs (mk ()))
    in
    let dpor, dpor_t, dpor_mw, dpor_mc =
      time_gc (fun () ->
          Explore.dfs ~reduce:Machine.RDpor ~max_execs (mk ()))
    in
    (* reduction_factor: full-tree executions per reduced execution —
       the measure the dpor >= sleep gate compares. *)
    let factor (r : Explore.report) =
      float_of_int (max 1 seq.Explore.executions)
      /. float_of_int (max 1 r.Explore.executions)
    in
    reduction_gaps := (name, factor red, factor dpor) :: !reduction_gaps;
    let reduced_extra r rt =
      [
        ( "execs_vs_full",
          Jsonout.Float
            (float_of_int r.Explore.executions
            /. float_of_int (max 1 seq.Explore.executions)) );
        ("reduction_factor", Jsonout.Float (factor r));
        speedup rt;
      ]
    in
    Jsonout.Obj
      [
        ("name", Jsonout.Str name);
        ("sequential", run_row seq (seq_t, seq_mw, seq_mc) []);
        ("incremental", run_row inc (inc_t, inc_mw, inc_mc) [ speedup inc_t ]);
        ( "map_backend",
          run_row map (map_t, map_mw, map_mc)
            [ ("flat_speedup_vs_map", Jsonout.Float flat_ratio) ] );
        ("pdfs", Jsonout.List pdfs_rows);
        ( "incremental_reduced",
          run_row red (red_t, red_mw, red_mc)
            (("pruned", Jsonout.Int red.Explore.pruned)
            :: reduced_extra red red_t) );
        ( "incremental_dpor",
          run_row dpor (dpor_t, dpor_mw, dpor_mc)
            (("dpor_pruned", Jsonout.Int dpor.Explore.dpor_pruned)
            :: reduced_extra dpor dpor_t) );
      ]
  in
  (* -- reads-from reduction rows -------------------------------------
     Data-heavy litmus tests where interleaving enumeration repeats
     execution graphs: the exhaustive rf-class census (one key per
     distinct rf⊕mo graph, via {!Explore.rf_class_key}) is the ground
     truth; [--reduce=dpor-rf] must count at most dpor's executions,
     reach the same verdict, and — the acceptance row, CoRR — exactly
     one execution per class. *)
  let census_config =
    { Machine.default_config with Machine.record_accesses = true }
  in
  let rf_litmus =
    [
      ("CoRR", Litmus.corr);
      ("SB", fun () -> Litmus.sb ());
      ("IRIW", Litmus.iriw);
    ]
  in
  let rf_gate = ref [] in
  let rf_row (name, (mk : unit -> Litmus.t)) =
    let classes = Hashtbl.create 64 in
    let t = mk () in
    let censused =
      {
        t.Litmus.scenario with
        Explore.build =
          (fun m ->
            let judge = t.Litmus.scenario.Explore.build m in
            fun outcome ->
              (match outcome with
              | Machine.Pruned -> ()
              | _ ->
                  Hashtbl.replace classes
                    (Explore.rf_class_key ~outcome (Machine.accesses m))
                    ());
              judge outcome);
      }
    in
    let full = Explore.dfs ~config:census_config ~max_execs censused in
    let rf_classes = Hashtbl.length classes in
    let ok_dpor, dpor, _ =
      Litmus.verdict ~max_execs ~reduce:Machine.RDpor (mk ())
    in
    let (ok_rf, rf, _), rf_t, _, _ =
      time_gc (fun () ->
          Litmus.verdict ~max_execs ~reduce:Machine.RDporRf (mk ()))
    in
    rf_gate :=
      (name, ok_dpor, ok_rf, dpor.Explore.executions, rf.Explore.executions,
       rf_classes, full.Explore.complete && rf.Explore.complete)
      :: !rf_gate;
    Jsonout.Obj
      [
        ("name", Jsonout.Str name);
        ("rf_classes", Jsonout.Int rf_classes);
        ("executions_full", Jsonout.Int full.Explore.executions);
        ("executions_dpor", Jsonout.Int dpor.Explore.executions);
        ("executions_dpor_rf", Jsonout.Int rf.Explore.executions);
        ("rf_pruned", Jsonout.Int rf.Explore.rf_pruned);
        ("verdict_dpor", Jsonout.Bool ok_dpor);
        ("verdict_dpor_rf", Jsonout.Bool ok_rf);
        ("complete", Jsonout.Bool (full.Explore.complete && rf.Explore.complete));
        ("seconds_dpor_rf", Jsonout.Float rf_t);
        ( "reduction_factor_vs_dpor",
          Jsonout.Float
            (float_of_int (max 1 dpor.Explore.executions)
            /. float_of_int (max 1 rf.Explore.executions)) );
      ]
  in
  let rf_rows = List.map rf_row rf_litmus in
  let json =
    Jsonout.Obj
      [
        ("max_execs", Jsonout.Int max_execs);
        ("quick", Jsonout.Bool quick);
        ( "host",
          Jsonout.Obj
            ([
               ("recommended_domains", Jsonout.Int domains);
               ("forced_jobs", Jsonout.Bool force_jobs);
               ("ocaml", Jsonout.Str Sys.ocaml_version);
             ]
            @
            if domains >= 4 then []
            else
              [
                ( "scaling_note",
                  Jsonout.Str
                    (Printf.sprintf
                       "host recommends %d domain(s): multi-domain rows are \
                        correctness measurements only (forced via \
                        --force-jobs), and pdfs speedup cannot be expressed \
                        on this hardware"
                       domains) );
              ]) );
        ("scenarios", Jsonout.List (List.map scenario_json scenarios));
        ("rf_reduction", Jsonout.List rf_rows);
      ]
  in
  write_json_file "BENCH_explore.json" json;
  if check then begin
    let failed = ref false in
    (match !slow with
    | [] -> Format.printf "perf-smoke: incremental >= sequential everywhere@."
    | l ->
        Format.printf
          "perf-smoke FAILED: incremental slower than sequential on: %s@."
          (String.concat ", " (List.rev l));
        failed := true);
    (* The within-run incremental-vs-sequential speedup is the headline
       same-host ratio (measured 3.9-5.1x on the reference container):
       it is what the flat data plane buys end to end, because the
       unboxed length-array snapshots are what make checkpoint-per-
       decision affordable.  Gate at 2x to leave noise margin. *)
    let min_inc_speedup = 2.0 in
    List.iter
      (fun (name, s) ->
        if s < min_inc_speedup then begin
          Format.printf
            "perf-smoke FAILED: incremental only %.2fx sequential on %s (gate \
             %.1fx)@."
            s name min_inc_speedup;
          failed := true
        end
        else
          Format.printf "perf-smoke: incremental %.2fx sequential on %s@." s
            name)
      (List.rev !inc_speedups);
    (* Flat-vs-map holds the *algorithm* fixed (both incremental), so it
       isolates the representation alone: histories are a minor share of
       per-execution cost next to the machine and the spec checkers, and
       the honest like-for-like ratio is ~1.15x.  Gate it as a
       no-regression bound with noise margin — the representation's real
       payoff is gated above. *)
    let min_flat_ratio = 0.9 in
    List.iter
      (fun (name, r) ->
        if r < min_flat_ratio then begin
          Format.printf
            "perf-smoke FAILED: flat backend %.2fx the map oracle on %s \
             (no-regression gate %.1fx)@."
            r name min_flat_ratio;
          failed := true
        end
        else
          Format.printf "perf-smoke: flat backend %.2fx the map oracle on %s@."
            r name)
      (List.rev !flat_ratios);
    (* DPOR must reduce at least as hard as sleep sets on the mp-queue
       battery (on a complete search it explores a subset of the
       sleep-set representatives, so equality is the worst legal case). *)
    List.iter
      (fun (name, sleep_f, dpor_f) ->
        if name = "mp-queue" then
          if dpor_f < sleep_f then begin
            Format.printf
              "perf-smoke FAILED: dpor reduction %.2fx below sleep-set %.2fx \
               on %s@."
              dpor_f sleep_f name;
            failed := true
          end
          else
            Format.printf
              "perf-smoke: dpor reduction %.2fx >= sleep-set %.2fx on %s@."
              dpor_f sleep_f name)
      (List.rev !reduction_gaps);
    (* Multi-domain scaling gates only where the host can express it. *)
    if domains >= 4 then
      List.iter
        (fun (name, s) ->
          if s < 2.5 then begin
            Format.printf
              "perf-smoke FAILED: pdfs jobs=4 only %.2fx jobs=1 on %s (gate \
               2.5x)@."
              s name;
            failed := true
          end
          else
            Format.printf "perf-smoke: pdfs jobs=4 is %.2fx jobs=1 on %s@." s
              name)
        (List.rev !scale4)
    else
      Format.printf
        "perf-smoke: scaling gate waived (host recommends %d domain(s), need \
         >= 4)@."
        domains;
    (* dpor-rf must never count more runs than dpor, must agree on every
       verdict, and on a complete search must count exactly one
       execution per distinct rf-class (the CoRR acceptance row). *)
    List.iter
      (fun (name, ok_dpor, ok_rf, ex_dpor, ex_rf, classes, complete) ->
        if ok_rf <> ok_dpor then begin
          Format.printf
            "perf-smoke FAILED: dpor-rf verdict differs from dpor on %s@." name;
          failed := true
        end;
        if ex_rf > ex_dpor then begin
          Format.printf
            "perf-smoke FAILED: dpor-rf counted %d > dpor's %d executions on \
             %s@."
            ex_rf ex_dpor name;
          failed := true
        end;
        if complete && ex_rf <> classes then begin
          Format.printf
            "perf-smoke FAILED: dpor-rf counted %d executions over %d \
             rf-classes on %s@."
            ex_rf classes name;
          failed := true
        end;
        if not !failed then
          Format.printf
            "perf-smoke: dpor-rf %s: %d executions == %d rf-classes (dpor: \
             %d)@."
            name ex_rf classes ex_dpor)
      (List.rev !rf_gate);
    (* trace-compat: a pinned legacy v1 witness script must parse, lift,
       round-trip through the v2 line format, and replay to the
       byte-identical outcome. *)
    begin
      let legacy = "1 0 2 0 1 0 3 0 1" in
      let outcome_of tr =
        let t = Litmus.corr () in
        let r = Explore.replay ~config:Machine.default_config t.Litmus.scenario tr in
        Format.asprintf "%a/%d" Machine.pp_outcome r.Explore.r_outcome
          r.Explore.r_clamped
      in
      match Decision.of_line legacy with
      | None ->
          Format.printf "perf-smoke FAILED: legacy v1 fixture did not parse@.";
          failed := true
      | Some v1 -> (
          let direct =
            Decision.of_ints
              (Array.of_list
                 (List.map int_of_string (String.split_on_char ' ' legacy)))
          in
          if not (Decision.equal_trace v1 direct) then begin
            Format.printf
              "perf-smoke FAILED: legacy v1 fixture lifts differently@.";
            failed := true
          end;
          match Decision.of_line (Decision.to_line v1) with
          | None ->
              Format.printf
                "perf-smoke FAILED: v2 round-trip of legacy fixture did not \
                 parse@.";
              failed := true
          | Some v2 ->
              let o1 = outcome_of v1 and o2 = outcome_of v2 in
              if o1 <> o2 then begin
                Format.printf
                  "perf-smoke FAILED: legacy fixture replays %s but its v2 \
                   form replays %s@."
                  o1 o2;
                failed := true
              end
              else
                Format.printf
                  "perf-smoke: trace-compat: legacy fixture and v2 form both \
                   replay %s@."
                  o1)
    end;
    if !failed then exit 1
  end

(* -- fuzz-comparison mode (--fuzz [--quick] [--check]) -------------------------

   Time-to-first-violation comparison of the fuzzing strategies, written
   to BENCH_fuzz.json: for each violating target (the deliberately weak
   MS queue, plus litmus tests whose distinguished weak outcome we hunt
   as if it were a bug), run each mode over a batch of seeds and compare
   the median number of executions to the first violation (deterministic
   per seed) and the median wall-clock seconds (host-dependent).  A trial
   that exhausts its budget without a violation counts as the full budget
   (censored).  [--check] exits nonzero if neither PCT nor the
   coverage-guided mode beats-or-ties uniform random on the ms-weak
   median: the CI fuzz-smoke gate. *)

let bench_fuzz ~quick ~check =
  let budget = if quick then 2_000 else 10_000 in
  let seeds = List.init (if quick then 7 else 15) (fun i -> 100 + i) in
  (* Hunt a litmus test's distinguished weak outcome as a "violation":
     the judge flags any execution that bumps the observation counter. *)
  let hunt name (mk_t : unit -> Litmus.t) () =
    let t = mk_t () in
    let before = ref 0 in
    {
      Explore.name;
      build =
        (fun m ->
          before := !(t.Litmus.observed);
          let judge = t.Litmus.scenario.Explore.build m in
          fun outcome ->
            match judge outcome with
            | Explore.Pass when !(t.Litmus.observed) > !before ->
                Explore.Violation "target behaviour observed"
            | v -> v);
    }
  in
  let targets =
    [
      ( "ms-weak",
        fun () -> Mp.make (queue_factory "ms-weak") (Mp.fresh_stats ()) );
      ("litmus-sb", hunt "sb-hunt" (fun () -> Litmus.sb ()));
      ( "litmus-mp-rlx",
        hunt "mp-rlx-hunt" (fun () -> Litmus.mp ~rmode:Mode.Rlx ()) );
      ("litmus-iriw", hunt "iriw-hunt" (fun () -> Litmus.iriw ()));
    ]
  in
  let modes = [ Fz.Fuzz.Uniform; Fz.Fuzz.Pct; Fz.Fuzz.Guided ] in
  let median xs =
    match List.sort compare xs with
    | [] -> 0.
    | s -> List.nth s (List.length s / 2)
  in
  let medians = Hashtbl.create 16 in
  let target_json (tname, mk) =
    let mode_json mode =
      let trials =
        List.map
          (fun seed ->
            let options =
              {
                Fz.Fuzz.default_options with
                Fz.Fuzz.mode;
                execs = budget;
                seed;
                shrink = false;
              }
            in
            let o = Fz.Fuzz.run ~options mk in
            (* censored at the budget when no violation was found *)
            let first =
              match o.Fz.Fuzz.first_violation_exec with
              | Some i -> i + 1
              | None -> budget
            in
            ( seed,
              first,
              o.Fz.Fuzz.first_violation_exec <> None,
              o.Fz.Fuzz.seconds ))
          seeds
      in
      let found = List.filter (fun (_, _, f, _) -> f) trials in
      let med_execs =
        median (List.map (fun (_, n, _, _) -> float_of_int n) trials)
      in
      let med_seconds = median (List.map (fun (_, _, _, s) -> s) trials) in
      Hashtbl.replace medians (tname, mode) med_execs;
      Jsonout.Obj
        [
          ("mode", Jsonout.Str (Fz.Fuzz.mode_name mode));
          ("trials", Jsonout.Int (List.length trials));
          ("found", Jsonout.Int (List.length found));
          ("median_execs_to_violation", Jsonout.Float med_execs);
          ("median_seconds", Jsonout.Float med_seconds);
          ( "per_seed",
            Jsonout.List
              (List.map
                 (fun (seed, n, f, s) ->
                   Jsonout.Obj
                     [
                       ("seed", Jsonout.Int seed);
                       ("execs_to_violation", Jsonout.Int n);
                       ("found", Jsonout.Bool f);
                       ("seconds", Jsonout.Float s);
                     ])
                 trials) );
        ]
    in
    Jsonout.Obj
      [
        ("target", Jsonout.Str tname);
        ("modes", Jsonout.List (List.map mode_json modes));
      ]
  in
  let json =
    Jsonout.Obj
      [
        ("budget", Jsonout.Int budget);
        ("seeds", Jsonout.Int (List.length seeds));
        ("quick", Jsonout.Bool quick);
        ("pct_depth", Jsonout.Int Fz.Fuzz.default_options.Fz.Fuzz.pct_depth);
        ("targets", Jsonout.List (List.map target_json targets));
      ]
  in
  write_json_file "BENCH_fuzz.json" json;
  if check then begin
    let m mode = Hashtbl.find medians ("ms-weak", mode) in
    let u = m Fz.Fuzz.Uniform
    and p = m Fz.Fuzz.Pct
    and g = m Fz.Fuzz.Guided in
    if Float.min p g <= u then
      Format.printf
        "fuzz-smoke: directed search beats-or-ties uniform on ms-weak \
         (uniform %.0f, pct %.0f, guided %.0f median execs)@."
        u p g
    else begin
      Format.printf
        "fuzz-smoke FAILED: uniform %.0f beats pct %.0f and guided %.0f on \
         ms-weak@."
        u p g;
      exit 1
    end
  end

(* -- audit-prioritization mode (--static [--check]) ----------------------------

   Machine-readable cost-to-first-verdict comparison, written to
   BENCH_static.json: for each probe, the mode-necessity audit is run
   twice — in declaration (discovery) order and in the static linter's
   predicted order (predicted-necessary sites first, their weakest
   verdict mutant run before the intermediate ones) — and the report's
   [first_violation] counter says how many mutants and executions each
   order spent before its first Necessary verdict.  The static analysis
   wall time is reported alongside: the prediction is only worth its
   cost if it is cheap next to the exploration it saves.  [--check]
   exits nonzero unless the prioritized order reaches the first verdict
   in strictly fewer executions (and no more mutants) on every probe:
   the CI static-smoke gate. *)

let bench_static ~check =
  let module Audit = Compass_analysis.Audit in
  let module Static = Compass_static.Static in
  let probes = [ "ms" ] in
  let options =
    {
      Audit.default_options with
      execs = 4000;
      jobs = 1;
      reduce = Machine.RSleep;
    }
  in
  let failed = ref [] in
  let probe_json key =
    let e =
      match Specreg.find key with
      | Some e -> e
      | None -> failwith ("no registered structure: " ^ key)
    in
    let scenarios = e.Compass_spec.Libspec.scenarios in
    let t0 = Unix.gettimeofday () in
    let decl = Audit.run ~options ~probe:key scenarios in
    let t1 = Unix.gettimeofday () in
    let st = Static.analyze ~subject:key scenarios in
    let t2 = Unix.gettimeofday () in
    let predicted = st.Static.predicted_necessary in
    let prio =
      Audit.run ~options
        ~prioritize:(predicted @ st.Static.over_strong)
        ~verdict_first:(fun s -> List.mem s predicted)
        ~probe:key scenarios
    in
    let t3 = Unix.gettimeofday () in
    let order_json (m, x) =
      Jsonout.Obj [ ("mutants", Jsonout.Int m); ("executions", Jsonout.Int x) ]
    in
    (match (decl.Audit.first_violation, prio.Audit.first_violation) with
    | Some (dm, dx), Some (pm, px) ->
        Format.printf
          "%-10s declaration order: %d mutants, %4d execs; prioritized: %d \
           mutants, %4d execs (static analysis %.1fs)@."
          key dm dx pm px (t2 -. t1);
        if not (px < dx && pm <= dm) then failed := key :: !failed
    | _ ->
        Format.printf "%-10s no first violation in one of the orders@." key;
        failed := key :: !failed);
    Jsonout.Obj
      [
        ("probe", Jsonout.Str key);
        ("predicted_necessary", Jsonout.str_list predicted);
        ("over_strong_candidates", Jsonout.str_list st.Static.over_strong);
        ( "declaration_order",
          Jsonout.Obj
            [
              ( "first_violation",
                Jsonout.opt order_json decl.Audit.first_violation );
              ("seconds", Jsonout.Float (t1 -. t0));
            ] );
        ( "static_prioritized",
          Jsonout.Obj
            [
              ( "first_violation",
                Jsonout.opt order_json prio.Audit.first_violation );
              ("analysis_seconds", Jsonout.Float (t2 -. t1));
              ("audit_seconds", Jsonout.Float (t3 -. t2));
            ] );
      ]
  in
  let json =
    Jsonout.Obj
      [
        ("execs_per_mutant", Jsonout.Int options.Audit.execs);
        ("probes", Jsonout.List (List.map probe_json probes));
      ]
  in
  write_json_file "BENCH_static.json" json;
  if check then
    match List.rev !failed with
    | [] ->
        Format.printf
          "static-smoke: prioritized order reaches the first verdict cheaper \
           everywhere@."
    | l ->
        Format.printf "static-smoke FAILED on: %s@." (String.concat ", " l);
        exit 1

(* -- simulation-refinement ledger (BENCH_sim.json) ---------------------------- *)

(* The cost profile of [compass sim]: per structure, how many executions
   the most-general-client family needs and how much the commit-point
   assignment search adds on top ([sim_states] per execution ~ the
   search's branching), plus time-to-witness on the checked-in broken
   fixture (ms-weak, [--until-violation] + shrink).  [--check] gates the
   verdicts: every correct structure must simulate, ms-weak must break
   with a localised witness. *)
let bench_sim ~quick ~check =
  let depth = if quick then 1 else 2 in
  let max_execs = if quick then 20_000 else 100_000 in
  (* Each structure is gated at the deepest MGC depth it simulates at.  The
     weak Herlihy-Wing variant is gated at depth 1: at depth 2 the client
     [ir|ir] exposes its weak empty dequeue (a fruitless scan bounded by a
     stale relaxed read of [back]) as a genuine LAThist-level break — the
     registry ladder's Hist:sat only covers the registered workloads, none
     of which run an enqueue and a dequeue on the same thread.  The break
     is pinned as an expected finding below rather than averaged away. *)
  let sim_structs =
    [ ("ms", depth); ("treiber", depth); ("hw", 1); ("lock-queue", depth) ]
  in
  let entry key =
    match Specreg.find key with
    | Some e -> e
    | None -> failwith ("no registered structure: " ^ key)
  in
  let wrong = ref [] in
  let rows =
    List.map
      (fun (key, depth) ->
        let e = entry key in
        let options =
          { Compass_sim.Sim.default_options with mgc_depth = depth; max_execs }
        in
        let r, t, _, _ =
          time_gc (fun () -> Compass_sim.Sim.run ~options e)
        in
        Format.printf
          "sim %-12s depth %d: %3d clients, %7d executions, %8d search \
           states, %6.2fs  %s@."
          key depth r.Compass_sim.Sim.clients_run r.Compass_sim.Sim.executions
          r.Compass_sim.Sim.sim_states t
          (if r.Compass_sim.Sim.ok then "SIMULATES" else "BREAKS");
        if not r.Compass_sim.Sim.ok then wrong := key :: !wrong;
        ( key,
          Jsonout.Obj
            [
              ("struct", Jsonout.Str key);
              ("mgc_depth", Jsonout.Int depth);
              ("clients", Jsonout.Int r.Compass_sim.Sim.clients_run);
              ("executions", Jsonout.Int r.Compass_sim.Sim.executions);
              ("sim_states", Jsonout.Int r.Compass_sim.Sim.sim_states);
              ("seconds", Jsonout.Float t);
              ("ok", Jsonout.Bool r.Compass_sim.Sim.ok);
              ("complete", Jsonout.Bool r.Compass_sim.Sim.complete);
            ] ))
      sim_structs
  in
  (* Pinned finding (full mode): hw at depth 2 must BREAK on the weak empty
     dequeue.  Run with the breaking client only so the row measures
     time-to-witness, not the whole 136-client family. *)
  let hw_depth2 =
    if quick then None
    else begin
      let options =
        {
          Compass_sim.Sim.default_options with
          mgc_depth = 2;
          max_execs;
          until_violation = true;
          only_client = Some "ir|ir";
        }
      in
      let r, t, _, _ =
        time_gc (fun () -> Compass_sim.Sim.run ~options (entry "hw"))
      in
      Format.printf
        "sim %-12s depth 2: client ir|ir — %s in %.2fs (weak empty dequeue, \
         expected)@."
        "hw"
        (if r.Compass_sim.Sim.ok then "SIMULATES" else "BREAKS")
        t;
      Some (r, t)
    end
  in
  (* Time-to-witness on the broken fixture: stop at the first breaking
     client, shrink, localise. *)
  let weak = entry "ms-weak" in
  let options =
    {
      Compass_sim.Sim.default_options with
      mgc_depth = depth;
      max_execs;
      until_violation = true;
    }
  in
  let wr, wt, _, _ =
    time_gc (fun () -> Compass_sim.Sim.run ~options weak)
  in
  let witness_ok =
    match wr.Compass_sim.Sim.witness with
    | Some w -> w.Compass_sim.Sim.w_detail <> None
    | None -> false
  in
  Format.printf
    "sim %-12s depth %d: time-to-witness %.2fs over %d executions — %s@."
    "ms-weak" depth wt wr.Compass_sim.Sim.executions
    (match wr.Compass_sim.Sim.witness with
    | Some w ->
        Printf.sprintf "witness on client %s (%d shrink replays%s)"
          w.Compass_sim.Sim.w_client w.Compass_sim.Sim.w_replays
          (if witness_ok then ", localised" else ", NO break detail")
    | None -> "NO WITNESS");
  let json =
    Jsonout.Obj
      [
        ("mgc_depth", Jsonout.Int depth);
        ("structures", Jsonout.List (List.map snd rows));
        ( "hw_depth2",
          match hw_depth2 with
          | None -> Jsonout.Null
          | Some (r, t) ->
              Jsonout.Obj
                [
                  ("client", Jsonout.Str "ir|ir");
                  ("breaks", Jsonout.Bool (not r.Compass_sim.Sim.ok));
                  ("executions", Jsonout.Int r.Compass_sim.Sim.executions);
                  ("time_to_witness_s", Jsonout.Float t);
                  ( "note",
                    Jsonout.Str
                      "weak empty dequeue: fruitless scan bounded by a stale \
                       relaxed back read; genuine LAThist-level break, see \
                       DESIGN.md" );
                ] );
        ( "ms_weak",
          Jsonout.Obj
            [
              ("executions", Jsonout.Int wr.Compass_sim.Sim.executions);
              ("time_to_witness_s", Jsonout.Float wt);
              ("ok", Jsonout.Bool wr.Compass_sim.Sim.ok);
              ( "witness",
                match wr.Compass_sim.Sim.witness with
                | None -> Jsonout.Null
                | Some w ->
                    Jsonout.Obj
                      [
                        ("client", Jsonout.Str w.Compass_sim.Sim.w_client);
                        ("message", Jsonout.Str w.Compass_sim.Sim.w_message);
                        ( "shrink_replays",
                          Jsonout.Int w.Compass_sim.Sim.w_replays );
                        ("localised", Jsonout.Bool witness_ok);
                      ] );
            ] );
      ]
  in
  write_json_file "BENCH_sim.json" json;
  if check then begin
    if !wrong <> [] then begin
      Format.printf "sim-smoke FAILED: should simulate but break: %s@."
        (String.concat ", " (List.rev !wrong));
      exit 1
    end;
    if wr.Compass_sim.Sim.ok then begin
      Format.printf
        "sim-smoke FAILED: ms-weak simulates but the registry expects a \
         violation@.";
      exit 1
    end;
    if not witness_ok then begin
      Format.printf
        "sim-smoke FAILED: ms-weak witness is missing or not localised to \
         a break step@.";
      exit 1
    end;
    (match hw_depth2 with
    | Some (r, _) when r.Compass_sim.Sim.ok ->
        Format.printf
          "sim-smoke FAILED: hw simulates at depth 2 on ir|ir — the weak \
           empty dequeue finding disappeared@.";
        exit 1
    | _ -> ());
    Format.printf
      "sim-smoke: %d structures simulate, ms-weak breaks with a localised \
       witness in %.2fs@."
      (List.length sim_structs) wt
  end

(* -- driver ------------------------------------------------------------------- *)

let bench_bechamel () =
  let tests =
    Test.make_grouped ~name:"compass"
      [
        e1_mp; e2_matrix; e3_hw; e4_spsc; e5_linearize; e6_exchanger;
        e8_chaselev; scaling; micro;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-50s %11s %8s@." "benchmark" "time/run" "r^2";
  Format.printf "%s@." (String.make 72 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let est =
           match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
         in
         let pp_time ppf ns =
           if ns >= 1e9 then Format.fprintf ppf "%8.2f s " (ns /. 1e9)
           else if ns >= 1e6 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
           else Format.fprintf ppf "%8.2f ns" ns
         in
         Format.printf "%-50s %a %8s@." name pp_time est
           (match Analyze.OLS.r_square ols with
           | Some r -> Printf.sprintf "%.3f" r
           | None -> "-"))

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--explore" argv then
    bench_explore ~quick:(List.mem "--quick" argv)
      ~check:(List.mem "--check" argv)
      ~force_jobs:(List.mem "--force-jobs" argv)
  else if List.mem "--fuzz" argv then
    bench_fuzz ~quick:(List.mem "--quick" argv)
      ~check:(List.mem "--check" argv)
  else if List.mem "--static" argv then
    bench_static ~check:(List.mem "--check" argv)
  else if List.mem "--sim" argv then
    bench_sim ~quick:(List.mem "--quick" argv)
      ~check:(List.mem "--check" argv)
  else bench_bechamel ()
