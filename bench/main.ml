(* COMPASS-OCaml benchmark harness.

   One Bechamel group per experiment of DESIGN.md's index (E1-E6; E7 is a
   report, produced by [bin/compass report]).  The paper's evaluation is a
   body of verifications, so what we measure is the *cost of checking*: the
   model checker's execution throughput per structure and client, and the
   per-execution cost of each spec-style checker — the operational
   counterpart of proof effort.  Absolute numbers are machine-dependent;
   the interesting shape is the relative cost of spec styles (LAThist's
   search > graph checks > abstract-state replay) and of structures
   (elimination stack > its parts). *)

open Bechamel
open Toolkit
open Compass_rmc
open Compass_machine
open Compass_spec
open Compass_dstruct
open Compass_clients

let vi n = Value.Int n

(* -- graph sampling: one representative finished execution ------------------- *)

let sample_queue_graph (factory : Iface.queue_factory) ~enqers ~deqers ~ops
    ~seed =
  let rec try_seed seed =
    let m = Machine.create () in
    let q = factory.make_queue m ~name:"q" in
    Machine.spawn m
      (List.init enqers (fun tid ->
           Prog.returning_unit
             (Prog.for_ 0 (ops - 1) (fun i ->
                  q.Iface.enq (Harness.val_of ~tid ~i))))
      @ List.init deqers (fun _ ->
            Prog.returning_unit
              (Prog.for_ 0 (ops - 1) (fun _ ->
                   Prog.bind (q.Iface.deq ()) (fun _ -> Prog.return ())))));
    match Machine.run m (Oracle.random ~seed) with
    | Machine.Finished _ -> q.Iface.q_graph
    | _ -> try_seed (seed + 1)
  in
  try_seed seed

let sample_stack_graph (factory : Iface.stack_factory) ~pushers ~poppers ~ops
    ~seed =
  let rec try_seed seed =
    let m = Machine.create () in
    let s = factory.make_stack m ~name:"s" in
    Machine.spawn m
      (List.init pushers (fun tid ->
           Prog.returning_unit
             (Prog.for_ 0 (ops - 1) (fun i ->
                  s.Iface.push (Harness.val_of ~tid ~i))))
      @ List.init poppers (fun _ ->
            Prog.returning_unit
              (Prog.for_ 0 (ops - 1) (fun _ ->
                   Prog.bind (s.Iface.pop ()) (fun _ -> Prog.return ())))));
    match Machine.run m (Oracle.random ~seed) with
    | Machine.Finished _ -> s.Iface.s_graph
    | _ -> try_seed (seed + 1)
  in
  try_seed seed

let explore_n ~execs sc () = ignore (Explore.random ~execs ~seed:17 sc)

(* -- E1: the MP client (Figure 1 + Figure 3) --------------------------------- *)

let e1_mp =
  Test.make_grouped ~name:"E1-mp"
    [
      Test.make ~name:"ms-queue/rel-acq"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make Msqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"ms-queue/weak-flag"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make_weak Msqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"hw-queue/rel-acq"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make Hwqueue.instantiate (Mp.fresh_stats ())) ()));
      Test.make ~name:"hw-queue/weak-flag"
        (Staged.stage (fun () ->
             explore_n ~execs:20 (Mp.make_weak Hwqueue.instantiate (Mp.fresh_stats ())) ()));
    ]

(* -- E2: spec-style matrix — per-execution checking cost --------------------- *)

let e2_matrix =
  let ms = sample_queue_graph Msqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:3 in
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:3 in
  let tr = sample_stack_graph Treiber.instantiate ~pushers:2 ~poppers:2 ~ops:2 ~seed:3 in
  let mk name style kind g =
    Test.make ~name (Staged.stage (fun () -> ignore (Styles.check style kind g)))
  in
  Test.make_grouped ~name:"E2-spec-styles"
    [
      mk "ms/LATso-abs" Styles.So_abs Styles.Queue ms;
      mk "ms/LAThb" Styles.Hb Styles.Queue ms;
      mk "ms/LAThb-abs" Styles.Hb_abs Styles.Queue ms;
      mk "ms/LAThist" Styles.Hist Styles.Queue ms;
      mk "hw/LAThb" Styles.Hb Styles.Queue hw;
      mk "hw/LAThist" Styles.Hist Styles.Queue hw;
      mk "treiber/LAThb" Styles.Hb Styles.Stack tr;
      mk "treiber/LAThist" Styles.Hist Styles.Stack tr;
    ]

(* -- E3: Herlihy-Wing — abstract states vs graph conditions ------------------ *)

let e3_hw =
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:3 ~deqers:2 ~ops:2 ~seed:5 in
  Test.make_grouped ~name:"E3-hw-queue"
    [
      Test.make ~name:"abstract-state-replay"
        (Staged.stage (fun () -> ignore (Queue_spec.abstract_state hw)));
      Test.make ~name:"graph-consistency"
        (Staged.stage (fun () -> ignore (Queue_spec.consistent hw)));
      Test.make ~name:"explore"
        (Staged.stage
           (explore_n ~execs:20
              (Harness.queue_workload Hwqueue.instantiate ~enqers:2 ~deqers:2
                 ~ops:2 ())));
    ]

(* -- E4: SPSC and the two-queue pipeline (Section 3.2) ------------------------ *)

let e4_spsc =
  Test.make_grouped ~name:"E4-spsc"
    [
      Test.make ~name:"ms-queue"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Spsc_client.make ~n:3 Msqueue.instantiate (Spsc_client.fresh_stats ()))
               ()));
      Test.make ~name:"hw-queue"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Spsc_client.make ~n:3 Hwqueue.instantiate (Spsc_client.fresh_stats ()))
               ()));
      Test.make ~name:"pipeline-ms-hw"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Pipeline.make ~n:2 Msqueue.instantiate Hwqueue.instantiate
                  (Pipeline.fresh_stats ()))
               ()));
    ]

(* -- E5: Treiber LAThist — commit order vs search (Figure 4) ------------------ *)

let e5_linearize =
  let tr = sample_stack_graph Treiber.instantiate ~pushers:2 ~poppers:2 ~ops:2 ~seed:9 in
  let hw = sample_queue_graph Hwqueue.instantiate ~enqers:2 ~deqers:2 ~ops:2 ~seed:9 in
  Test.make_grouped ~name:"E5-linearize"
    [
      Test.make ~name:"treiber/commit-order"
        (Staged.stage (fun () ->
             ignore (Linearize.commit_order_valid Linearize.Stack tr)));
      Test.make ~name:"treiber/search"
        (Staged.stage (fun () -> ignore (Linearize.search Linearize.Stack tr)));
      Test.make ~name:"hw/search"
        (Staged.stage (fun () -> ignore (Linearize.search Linearize.Queue hw)));
    ]

(* -- E6: exchanger and elimination stack (Section 4) -------------------------- *)

let e6_exchanger =
  Test.make_grouped ~name:"E6-exchanger-es"
    [
      Test.make ~name:"exchanger-pair"
        (Staged.stage
           (explore_n ~execs:20 (Harness.exchanger_workload ~threads:2 ())));
      Test.make ~name:"resource-exchange"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Resource_exchange.make ~threads:2 (Resource_exchange.fresh_stats ()))
               ()));
      Test.make ~name:"treiber-workload"
        (Staged.stage
           (explore_n ~execs:10
              (Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:2
                 ~ops:1 ())));
      Test.make ~name:"es-workload"
        (Staged.stage
           (explore_n ~execs:10
              (Harness.stack_workload Elimination.instantiate ~pushers:2
                 ~poppers:2 ~ops:1 ())));
      Test.make ~name:"es-compose-check"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Es_compose.make ~pushers:2 ~poppers:2 ~ops:1
                  (Es_compose.fresh_stats ()))
               ()));
    ]

(* -- E8: Chase-Lev work-stealing deque (Section 6 future work) ----------------- *)

let e8_chaselev =
  Test.make_grouped ~name:"E8-chaselev"
    [
      Test.make ~name:"explore-sc-fences"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Ws_client.make ~tasks:2 ~thieves:1 ~steals:1
                  (Ws_client.fresh_stats ()))
               ()));
      Test.make ~name:"explore-weak-fences"
        (Staged.stage (fun () ->
             explore_n ~execs:20
               (Ws_client.make ~weak_fences:true ~tasks:2 ~thieves:1 ~steals:2
                  (Ws_client.fresh_stats ()))
               ()));
      Test.make ~name:"explore-contended"
        (Staged.stage (fun () ->
             explore_n ~execs:10
               (Ws_client.make ~tasks:3 ~thieves:2 ~steals:2
                  (Ws_client.fresh_stats ()))
               ()));
    ]

(* -- substrate microbenchmarks ------------------------------------------------ *)

let micro =
  let view =
    List.fold_left
      (fun v i -> View.extend v (Loc.make ~base:i ~off:0) i)
      View.bot
      (List.init 16 (fun i -> i))
  in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"view-join"
        (Staged.stage (fun () -> ignore (View.join view view)));
      Test.make ~name:"machine-steps-1k"
        (Staged.stage (fun () ->
             let m = Machine.create () in
             let x = Machine.alloc m ~name:"x" ~init:(vi 0) 1 in
             ignore
               (Machine.solo m
                  (Prog.map
                     (Prog.for_ 1 500 (fun _ ->
                          Prog.bind (Prog.load x Mode.Rlx) (fun _ ->
                              Prog.store x (vi 1) Mode.Rlx)))
                     (fun () -> Value.Unit)))));
      Test.make ~name:"solo-msqueue-5-enq-deq"
        (Staged.stage (fun () ->
             let m = Machine.create () in
             let t = Msqueue.create m ~name:"q" in
             ignore
               (Machine.solo m
                  (Prog.map
                     (Prog.for_ 1 5 (fun i ->
                          Prog.bind (Msqueue.enq t (vi i)) (fun () ->
                              Prog.bind (Msqueue.deq t) (fun _ -> Prog.return ()))))
                     (fun () -> Value.Unit)))));
    ]

(* -- scaling: checker cost vs history size ------------------------------------- *)

(* Build progressively larger stack graphs (sequentially, so they are
   valid) and measure how each checker's cost grows — the operational
   analogue of "proof effort scales with history length". *)
let scaling =
  let graph_of_size n =
    let m = Machine.create () in
    let t = Treiber.create ~fuel:64 m ~name:"s" in
    ignore
      (Machine.solo m
         (Prog.map
            (Prog.for_ 1 n (fun i ->
                 Prog.bind (Treiber.push t (vi i)) (fun () ->
                     if i mod 2 = 0 then
                       Prog.bind (Treiber.pop t) (fun _ -> Prog.return ())
                     else Prog.return ())))
            (fun () -> Value.Unit)));
    Treiber.graph t
  in
  let sizes = [ 4; 8; 16; 32 ] in
  Test.make_grouped ~name:"scaling"
    (List.concat_map
       (fun n ->
         let g = graph_of_size n in
         [
           Test.make
             ~name:(Printf.sprintf "graph-consistency/%d-ops" n)
             (Staged.stage (fun () -> ignore (Stack_spec.consistent g)));
           Test.make
             ~name:(Printf.sprintf "linearize-search/%d-ops" n)
             (Staged.stage (fun () ->
                  ignore (Linearize.search Linearize.Stack g)));
         ])
       sizes)

(* -- explore-throughput mode (--explore [--quick] [--check]) -------------------

   Machine-readable exploration throughput, written to BENCH_explore.json:
   for each scenario,

   - "sequential"          — replay-from-root DFS ([~incremental:false]),
                             the differential-testing oracle;
   - "incremental"         — the default checkpoint/restore engine;
   - "incremental_reduced" — the same engine with sleep-set reduction;
   - "pdfs"                — the sharded parallel driver at 1/2/4 domains
                             (each worker owns a per-domain incremental
                             engine).

   The report fields are exact whatever the mode; wall-clock speedups
   depend on the host.  Multi-domain pdfs rows are skipped (and marked as
   such) when the host only recommends one domain — a 1-core box cannot
   exhibit parallel speedup, only scheduling noise.  [--check] exits
   nonzero if the incremental engine is slower than sequential replay on
   any scenario: the CI perf-smoke gate. *)

let bench_explore ~quick ~check =
  let max_execs = if quick then 2_000 else 20_000 in
  let scenarios =
    [
      ("mp-queue", fun () -> Mp.make Msqueue.instantiate (Mp.fresh_stats ()));
      ( "hw-queue",
        fun () ->
          Harness.queue_workload Hwqueue.instantiate ~enqers:2 ~deqers:1 ~ops:1
            () );
      ( "treiber",
        fun () ->
          Harness.stack_workload Treiber.instantiate ~pushers:2 ~poppers:1
            ~ops:2 () );
    ]
  in
  let domains = Domain.recommended_domain_count () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  let rate (r : Explore.report) t =
    if t > 0. then float_of_int r.Explore.executions /. t else 0.
  in
  let slow = ref [] in
  let buf = Buffer.create 4096 in
  let bpf fmt = Printf.bprintf buf fmt in
  bpf "{\n  \"max_execs\": %d,\n  \"quick\": %b,\n" max_execs quick;
  bpf "  \"host\": { \"recommended_domains\": %d, \"ocaml\": %S },\n" domains
    Sys.ocaml_version;
  bpf "  \"scenarios\": [";
  List.iteri
    (fun i (name, mk) ->
      if i > 0 then bpf ",";
      let seq, seq_t =
        time (fun () -> Explore.dfs ~max_execs ~incremental:false (mk ()))
      in
      let inc, inc_t = time (fun () -> Explore.dfs ~max_execs (mk ())) in
      if rate inc inc_t < rate seq seq_t then slow := name :: !slow;
      bpf "\n    { \"name\": %S,\n" name;
      bpf
        "      \"sequential\": { \"executions\": %d, \"complete\": %b, \
         \"seconds\": %.4f, \"execs_per_sec\": %.1f },\n"
        seq.Explore.executions seq.Explore.complete seq_t (rate seq seq_t);
      bpf
        "      \"incremental\": { \"executions\": %d, \"complete\": %b, \
         \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
         \"speedup_vs_sequential\": %.2f },\n"
        inc.Explore.executions inc.Explore.complete inc_t (rate inc inc_t)
        (if inc_t > 0. then seq_t /. inc_t else 0.);
      bpf "      \"pdfs\": [";
      List.iteri
        (fun j jobs ->
          if j > 0 then bpf ",";
          if jobs > 1 && domains < 2 then
            bpf
              "\n        { \"jobs\": %d, \"skipped\": \"host recommends %d \
               domain(s)\" }"
              jobs domains
          else begin
            let r, t = time (fun () -> Explore.pdfs ~jobs ~max_execs (mk ())) in
            bpf
              "\n        { \"jobs\": %d, \"executions\": %d, \"complete\": \
               %b, \"seconds\": %.4f, \"execs_per_sec\": %.1f, \
               \"speedup_vs_sequential\": %.2f }"
              jobs r.Explore.executions r.Explore.complete t (rate r t)
              (if t > 0. then seq_t /. t else 0.)
          end)
        [ 1; 2; 4 ];
      bpf "\n      ],\n";
      let red, red_t =
        time (fun () -> Explore.dfs ~reduce:true ~max_execs (mk ()))
      in
      bpf
        "      \"incremental_reduced\": { \"executions\": %d, \"pruned\": %d, \
         \"complete\": %b, \"seconds\": %.4f, \"execs_vs_full\": %.3f, \
         \"speedup_vs_sequential\": %.2f }\n"
        red.Explore.executions red.Explore.pruned red.Explore.complete red_t
        (float_of_int red.Explore.executions
        /. float_of_int (max 1 seq.Explore.executions))
        (if red_t > 0. then seq_t /. red_t else 0.);
      bpf "    }")
    scenarios;
  bpf "\n  ]\n}\n";
  let oc = open_out "BENCH_explore.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  print_string (Buffer.contents buf);
  Format.printf "wrote BENCH_explore.json@.";
  if check then
    match !slow with
    | [] -> Format.printf "perf-smoke: incremental >= sequential everywhere@."
    | l ->
        Format.printf
          "perf-smoke FAILED: incremental slower than sequential on: %s@."
          (String.concat ", " (List.rev l));
        exit 1

(* -- driver ------------------------------------------------------------------- *)

let bench_bechamel () =
  let tests =
    Test.make_grouped ~name:"compass"
      [
        e1_mp; e2_matrix; e3_hw; e4_spsc; e5_linearize; e6_exchanger;
        e8_chaselev; scaling; micro;
      ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Format.printf "%-50s %11s %8s@." "benchmark" "time/run" "r^2";
  Format.printf "%s@." (String.make 72 '-');
  Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (name, ols) ->
         let est =
           match Analyze.OLS.estimates ols with Some (t :: _) -> t | _ -> nan
         in
         let pp_time ppf ns =
           if ns >= 1e9 then Format.fprintf ppf "%8.2f s " (ns /. 1e9)
           else if ns >= 1e6 then Format.fprintf ppf "%8.2f ms" (ns /. 1e6)
           else if ns >= 1e3 then Format.fprintf ppf "%8.2f us" (ns /. 1e3)
           else Format.fprintf ppf "%8.2f ns" ns
         in
         Format.printf "%-50s %a %8s@." name pp_time est
           (match Analyze.OLS.r_square ols with
           | Some r -> Printf.sprintf "%.3f" r
           | None -> "-"))

let () =
  let argv = Array.to_list Sys.argv in
  if List.mem "--explore" argv then
    bench_explore ~quick:(List.mem "--quick" argv)
      ~check:(List.mem "--check" argv)
  else bench_bechamel ()
